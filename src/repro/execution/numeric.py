"""NumPy micro-transformer used to validate hybrid prefilling numerically.

The paper's correctness argument for hybrid prefilling is that non-attention
layers map each token independently, so evaluating them chunk-by-chunk cannot
change the result.  This module makes that argument executable: a small
decoder-only transformer (grouped-query attention, RMSNorm, SwiGLU MLP — the
same structure as the paper's models, at toy dimensions) whose three prefill
paths

* :meth:`MicroTransformer.prefill_full`   — whole sequence through every layer,
* :meth:`MicroTransformer.prefill_chunked` — chunked prefilling (chunks through
  the *whole* model, KV of all layers retained between chunks),
* :meth:`MicroTransformer.prefill_hybrid` — hybrid prefilling (position-wise
  layers chunked, attention whole, per-layer KV discarded after use),

produce identical last-token logits while exhibiting the different peak-memory
profiles the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.execution.chunked_linear import ChunkedExecutionOptions, chunked_positionwise
from repro.execution.memory_tracker import MemoryTracker


@dataclass(frozen=True)
class MicroTransformerConfig:
    """Architecture of the micro-transformer (toy-sized by default)."""

    num_layers: int = 4
    hidden_size: int = 64
    num_heads: int = 8
    num_kv_heads: int = 2
    head_dim: int = 8
    intermediate_size: int = 128
    vocab_size: int = 512
    rms_eps: float = 1e-6
    dtype: type = np.float64

    def __post_init__(self) -> None:
        if self.num_heads % self.num_kv_heads != 0:
            raise ConfigurationError("num_heads must be a multiple of num_kv_heads")
        if self.num_heads * self.head_dim != self.hidden_size:
            raise ConfigurationError("hidden_size must equal num_heads * head_dim")

    @property
    def q_dim(self) -> int:
        return self.num_heads * self.head_dim

    @property
    def kv_dim(self) -> int:
        return self.num_kv_heads * self.head_dim


@dataclass
class PrefillResult:
    """Outcome of one prefill pass."""

    logits: np.ndarray
    peak_bytes: int
    tracker: MemoryTracker = field(repr=False, default_factory=MemoryTracker)

    def constrained_probabilities(self, allowed_token_ids: list[int]) -> dict[int, float]:
        """Softmax of the last-token logits restricted to ``allowed_token_ids``.

        This is the prefill-only output contract of the paper's applications:
        the engine samples only from a caller-provided list (e.g. "Yes"/"No")
        and returns the probability of each, which the application uses as a
        score.
        """
        if not allowed_token_ids:
            raise ValueError("allowed_token_ids must not be empty")
        selected = np.array([self.logits[token] for token in allowed_token_ids], dtype=np.float64)
        selected -= selected.max()
        weights = np.exp(selected)
        probabilities = weights / weights.sum()
        return {token: float(p) for token, p in zip(allowed_token_ids, probabilities)}


class MicroTransformer:
    """A small decoder-only transformer with deterministic random weights."""

    def __init__(self, config: MicroTransformerConfig = MicroTransformerConfig(), *,
                 seed: int = 0) -> None:
        self.config = config
        rng = np.random.default_rng(seed)
        dtype = config.dtype
        scale = 1.0 / np.sqrt(config.hidden_size)

        def weight(*shape: int) -> np.ndarray:
            return (rng.standard_normal(shape) * scale).astype(dtype)

        self.embedding = weight(config.vocab_size, config.hidden_size)
        self.lm_head = weight(config.hidden_size, config.vocab_size)
        self.final_norm_gain = np.ones(config.hidden_size, dtype=dtype)
        self.layers: list[dict[str, np.ndarray]] = []
        for _ in range(config.num_layers):
            self.layers.append({
                "input_norm": np.ones(config.hidden_size, dtype=dtype),
                "wq": weight(config.hidden_size, config.q_dim),
                "wk": weight(config.hidden_size, config.kv_dim),
                "wv": weight(config.hidden_size, config.kv_dim),
                "wo": weight(config.q_dim, config.hidden_size),
                "post_norm": np.ones(config.hidden_size, dtype=dtype),
                "w_gate": weight(config.hidden_size, config.intermediate_size),
                "w_up": weight(config.hidden_size, config.intermediate_size),
                "w_down": weight(config.intermediate_size, config.hidden_size),
            })

    # ------------------------------------------------------------ primitives

    def _rms_norm(self, x: np.ndarray, gain: np.ndarray) -> np.ndarray:
        variance = np.mean(np.square(x), axis=-1, keepdims=True)
        return x / np.sqrt(variance + self.config.rms_eps) * gain

    @staticmethod
    def _silu(x: np.ndarray) -> np.ndarray:
        return x / (1.0 + np.exp(-x))

    def _project_qkv(self, layer: dict[str, np.ndarray], hidden: np.ndarray) -> np.ndarray:
        """Norm + fused QKV projection for a slice of token rows (position-wise)."""
        normed = self._rms_norm(hidden, layer["input_norm"])
        return np.concatenate(
            [normed @ layer["wq"], normed @ layer["wk"], normed @ layer["wv"]], axis=-1
        )

    def _mlp_block(self, layer: dict[str, np.ndarray], hidden: np.ndarray) -> np.ndarray:
        """Post-norm + SwiGLU MLP + residual for a slice of token rows (position-wise)."""
        normed = self._rms_norm(hidden, layer["post_norm"])
        gate = self._silu(normed @ layer["w_gate"])
        up = normed @ layer["w_up"]
        return hidden + (gate * up) @ layer["w_down"]

    def _attention(self, qkv: np.ndarray, *, context_k: np.ndarray | None = None,
                   context_v: np.ndarray | None = None,
                   query_offset: int = 0) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Causal grouped-query attention.

        Args:
            qkv: ``(n, q_dim + 2 * kv_dim)`` fused projections of the new tokens.
            context_k / context_v: Optional cached keys / values (``(m, kv_dim)``)
                that the new tokens may also attend to (chunked prefilling).
            query_offset: Absolute position of the first new token, used for the
                causal mask against the cached context.

        Returns:
            ``(attention_output, k_new, v_new)`` where the output has shape
            ``(n, q_dim)`` and ``k_new`` / ``v_new`` are this call's keys/values
            (so callers can decide whether to retain them).
        """
        config = self.config
        n = qkv.shape[0]
        q = qkv[:, :config.q_dim]
        k_new = qkv[:, config.q_dim:config.q_dim + config.kv_dim]
        v_new = qkv[:, config.q_dim + config.kv_dim:]

        if context_k is not None and context_k.size:
            k_all = np.concatenate([context_k, k_new], axis=0)
            v_all = np.concatenate([context_v, v_new], axis=0)
        else:
            k_all = k_new
            v_all = v_new
        m = k_all.shape[0]

        heads_per_kv = config.num_heads // config.num_kv_heads
        q_heads = q.reshape(n, config.num_heads, config.head_dim)
        k_heads = k_all.reshape(m, config.num_kv_heads, config.head_dim)
        v_heads = v_all.reshape(m, config.num_kv_heads, config.head_dim)

        # Causal mask: new token i (absolute position query_offset + i) may
        # attend to absolute positions <= query_offset + i.
        positions = np.arange(m)
        query_positions = query_offset + np.arange(n)
        mask = positions[None, :] <= query_positions[:, None]

        output = np.empty((n, config.num_heads, config.head_dim), dtype=qkv.dtype)
        inv_sqrt_d = 1.0 / np.sqrt(config.head_dim)
        for head in range(config.num_heads):
            kv_head = head // heads_per_kv
            scores = (q_heads[:, head, :] @ k_heads[:, kv_head, :].T) * inv_sqrt_d
            scores = np.where(mask, scores, -np.inf)
            scores -= scores.max(axis=-1, keepdims=True)
            weights = np.exp(scores)
            weights /= weights.sum(axis=-1, keepdims=True)
            output[:, head, :] = weights @ v_heads[:, kv_head, :]
        return output.reshape(n, config.q_dim), k_new, v_new

    def _finalize(self, hidden_last: np.ndarray) -> np.ndarray:
        normed = self._rms_norm(hidden_last, self.final_norm_gain)
        return normed @ self.lm_head

    # ---------------------------------------------------------- prefill paths

    def prefill_full(self, token_ids: list[int] | np.ndarray) -> PrefillResult:
        """Vanilla prefilling: whole sequence, every layer, all KV retained."""
        tokens = np.asarray(token_ids, dtype=np.int64)
        tracker = MemoryTracker()
        hidden = self.embedding[tokens]
        tracker.allocate("residual", int(hidden.nbytes))
        kv_bytes_per_layer = 0
        for index, layer in enumerate(self.layers):
            qkv = self._project_qkv(layer, hidden)
            tracker.allocate("qkv", int(qkv.nbytes))
            attn_out, k_new, v_new = self._attention(qkv)
            kv_bytes_per_layer = int(k_new.nbytes + v_new.nbytes)
            tracker.allocate(f"kv.layer{index}", kv_bytes_per_layer)
            tracker.allocate("attn_out", int(attn_out.nbytes))
            hidden = hidden + attn_out @ layer["wo"]
            tracker.free("qkv")
            tracker.free("attn_out")
            normed = self._rms_norm(hidden, layer["post_norm"])
            gate_up = np.concatenate(
                [self._silu(normed @ layer["w_gate"]), normed @ layer["w_up"]], axis=-1
            )
            tracker.allocate("mlp.gate_up", int(gate_up.nbytes))
            inter = gate_up[:, :self.config.intermediate_size] * gate_up[:, self.config.intermediate_size:]
            tracker.allocate("mlp.inter", int(inter.nbytes))
            hidden = hidden + inter @ layer["w_down"]
            tracker.free("mlp.gate_up")
            tracker.free("mlp.inter")
        logits = self._finalize(hidden[-1])
        return PrefillResult(logits=logits, peak_bytes=tracker.peak_bytes, tracker=tracker)

    def prefill_chunked(self, token_ids: list[int] | np.ndarray, *, chunk_tokens: int = 64) -> PrefillResult:
        """Chunked prefilling: chunks flow through the whole model, all KV kept."""
        if chunk_tokens <= 0:
            raise ValueError("chunk_tokens must be positive")
        tokens = np.asarray(token_ids, dtype=np.int64)
        tracker = MemoryTracker()
        num_tokens = len(tokens)
        k_cache: list[np.ndarray] = [
            np.empty((0, self.config.kv_dim), dtype=self.config.dtype) for _ in self.layers
        ]
        v_cache: list[np.ndarray] = [
            np.empty((0, self.config.kv_dim), dtype=self.config.dtype) for _ in self.layers
        ]
        last_hidden: np.ndarray | None = None
        for start in range(0, num_tokens, chunk_tokens):
            end = min(start + chunk_tokens, num_tokens)
            hidden = self.embedding[tokens[start:end]]
            tracker.allocate("residual.chunk", int(hidden.nbytes))
            for index, layer in enumerate(self.layers):
                qkv = self._project_qkv(layer, hidden)
                tracker.allocate("qkv.chunk", int(qkv.nbytes))
                attn_out, k_new, v_new = self._attention(
                    qkv, context_k=k_cache[index], context_v=v_cache[index], query_offset=start,
                )
                k_cache[index] = np.concatenate([k_cache[index], k_new], axis=0)
                v_cache[index] = np.concatenate([v_cache[index], v_new], axis=0)
                tracker.allocate(
                    f"kv.layer{index}", int(k_cache[index].nbytes + v_cache[index].nbytes)
                )
                hidden = hidden + attn_out @ layer["wo"]
                tracker.free("qkv.chunk")
                hidden = self._mlp_block(layer, hidden)
                tracker.allocate("mlp.chunk", int(hidden.nbytes * 2 * self.config.intermediate_size / self.config.hidden_size))
                tracker.free("mlp.chunk")
            last_hidden = hidden
            tracker.free("residual.chunk")
        assert last_hidden is not None
        logits = self._finalize(last_hidden[-1])
        return PrefillResult(logits=logits, peak_bytes=tracker.peak_bytes, tracker=tracker)

    def prefill_hybrid(self, token_ids: list[int] | np.ndarray, *,
                       options: ChunkedExecutionOptions = ChunkedExecutionOptions(chunk_tokens=64),
                       retain_kv: bool = False) -> PrefillResult:
        """Hybrid prefilling: position-wise layers chunked, attention whole.

        Args:
            token_ids: Input token ids.
            options: Chunk size and the output-preallocation / in-place switches
                (the Figure 10 ablation knobs).
            retain_kv: When False (the paper's default for prefill-only
                requests), each layer's K/V is released as soon as the layer's
                attention finishes; when True the KV of every layer is kept, as
                an engine would do to populate a prefix cache.
        """
        tokens = np.asarray(token_ids, dtype=np.int64)
        tracker = MemoryTracker()
        hidden = self.embedding[tokens]
        tracker.allocate("residual", int(hidden.nbytes))

        for index, layer in enumerate(self.layers):
            qkv = chunked_positionwise(
                lambda rows, layer=layer: self._project_qkv(layer, rows),
                hidden,
                self.config.q_dim + 2 * self.config.kv_dim,
                options=ChunkedExecutionOptions(
                    chunk_tokens=options.chunk_tokens,
                    preallocate_output=options.preallocate_output,
                    inplace_when_possible=False,  # width changes, never in-place
                ),
                tracker=tracker,
                tag=f"layer{index}.qkv",
            )
            attn_out, k_new, v_new = self._attention(qkv)
            tracker.allocate("kv.current_layer", int(k_new.nbytes + v_new.nbytes))
            if retain_kv:
                tracker.allocate(f"kv.layer{index}", int(k_new.nbytes + v_new.nbytes))
            tracker.free(f"layer{index}.qkv.output")
            tracker.allocate("attn_out", int(attn_out.nbytes))

            # Residual add + MLP, evaluated chunk-by-chunk in place over hidden.
            chunk = options.chunk_tokens
            for start in range(0, hidden.shape[0], chunk):
                end = min(start + chunk, hidden.shape[0])
                partial = hidden[start:end] + attn_out[start:end] @ layer["wo"]
                hidden[start:end] = self._mlp_block(layer, partial)
                tracker.allocate(
                    "mlp.chunk",
                    int((end - start) * 2 * self.config.intermediate_size
                        * np.dtype(self.config.dtype).itemsize),
                )
                tracker.free("mlp.chunk")
            tracker.free("attn_out")
            tracker.free("kv.current_layer")

        logits = self._finalize(hidden[-1])
        return PrefillResult(logits=logits, peak_bytes=tracker.peak_bytes, tracker=tracker)
