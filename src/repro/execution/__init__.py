"""Numerical execution substrate.

The paper implements hybrid prefilling by rewriting the torch.compile graph of
the model: consecutive position-wise (linear) operations are grouped into a
virtual layer that is evaluated chunk-by-chunk, while attention runs over the
whole sequence.  This package reproduces that machinery at a scale that runs on
a CPU:

* :mod:`repro.execution.memory_tracker` — an allocation ledger that records the
  live-tensor byte count over time (the Figure 3 traces, at micro scale);
* :mod:`repro.execution.tensor_graph` — a small computation-graph IR plus the
  pass that groups chunkable operations into virtual layers;
* :mod:`repro.execution.chunked_linear` — chunk-by-chunk evaluation of
  position-wise functions with output preallocation and in-place reuse;
* :mod:`repro.execution.numeric` — a NumPy micro-transformer whose full,
  chunked, and hybrid prefill paths are numerically identical, which is the
  correctness argument behind hybrid prefilling.
"""

from repro.execution.memory_tracker import MemoryTracker, MemorySample
from repro.execution.tensor_graph import (
    GraphNode,
    OpKind,
    ComputationGraph,
    VirtualLayer,
    build_transformer_graph,
    group_chunkable_operations,
)
from repro.execution.chunked_linear import chunked_positionwise, ChunkedExecutionOptions
from repro.execution.numeric import MicroTransformer, MicroTransformerConfig, PrefillResult

__all__ = [
    "MemoryTracker",
    "MemorySample",
    "GraphNode",
    "OpKind",
    "ComputationGraph",
    "VirtualLayer",
    "build_transformer_graph",
    "group_chunkable_operations",
    "chunked_positionwise",
    "ChunkedExecutionOptions",
    "MicroTransformer",
    "MicroTransformerConfig",
    "PrefillResult",
]
