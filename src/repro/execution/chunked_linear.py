"""Chunk-by-chunk evaluation of position-wise functions.

This is the executor half of hybrid prefilling: a function that maps each token
row independently (a virtual layer of linear / norm / activation ops) is
applied to the input in chunks so that only one chunk's worth of intermediate
tensors is ever live.  The two optimisations the paper describes are
implemented and individually switchable so the Figure 10 ablation can measure
them:

* **output preallocation** — the output tensor is allocated once up front and
  each chunk's result is written into its slice, instead of concatenating chunk
  outputs at the end (which would transiently double the output footprint);
* **in-place reuse** — when the output has the same per-token width as the
  input, the input buffer itself is reused as the output buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.execution.memory_tracker import MemoryTracker


@dataclass(frozen=True)
class ChunkedExecutionOptions:
    """Switches for the chunked executor (the Figure 10 ablation knobs)."""

    chunk_tokens: int = 256
    preallocate_output: bool = True
    inplace_when_possible: bool = True

    def __post_init__(self) -> None:
        if self.chunk_tokens <= 0:
            raise ValueError("chunk_tokens must be positive")


def chunked_positionwise(
    func: Callable[[np.ndarray], np.ndarray],
    inputs: np.ndarray,
    output_width: int,
    *,
    options: ChunkedExecutionOptions = ChunkedExecutionOptions(),
    tracker: MemoryTracker | None = None,
    tag: str = "virtual_layer",
) -> np.ndarray:
    """Apply a position-wise ``func`` to ``inputs`` chunk-by-chunk.

    Args:
        func: Maps an ``(n, in_width)`` array to an ``(n, output_width)`` array,
            treating every row independently.
        inputs: ``(num_tokens, in_width)`` input activations.
        output_width: Per-token width of the output.
        options: Chunk size and optimisation switches.
        tracker: Optional memory tracker; chunk intermediates and the output are
            registered with it so the caller can observe the footprint.
        tag: Tag prefix used when registering allocations.

    Returns:
        The ``(num_tokens, output_width)`` output, identical to ``func(inputs)``.
    """
    num_tokens, in_width = inputs.shape
    chunk = options.chunk_tokens

    inplace = (
        options.inplace_when_possible
        and options.preallocate_output
        and output_width == in_width
        and inputs.dtype != np.dtype(object)
    )

    if options.preallocate_output:
        if inplace:
            output = inputs
        else:
            output = np.empty((num_tokens, output_width), dtype=inputs.dtype)
            if tracker is not None:
                tracker.allocate(f"{tag}.output", int(output.nbytes))
        chunk_results: list[np.ndarray] | None = None
    else:
        output = None
        chunk_results = []

    for index, start in enumerate(range(0, num_tokens, chunk)):
        end = min(start + chunk, num_tokens)
        result = func(inputs[start:end])
        if result.shape != (end - start, output_width):
            raise ValueError(
                f"position-wise function returned shape {result.shape}, "
                f"expected {(end - start, output_width)}"
            )
        if tracker is not None:
            tracker.allocate(f"{tag}.chunk", int(result.nbytes))
        if options.preallocate_output:
            output[start:end] = result  # type: ignore[index]
        else:
            chunk_results.append(result)  # type: ignore[union-attr]
            if tracker is not None:
                tracker.allocate(f"{tag}.chunk_kept.{index}", int(result.nbytes))
        if tracker is not None:
            tracker.free(f"{tag}.chunk")

    if not options.preallocate_output:
        output = np.concatenate(chunk_results, axis=0)  # type: ignore[arg-type]
        if tracker is not None:
            tracker.allocate(f"{tag}.output", int(output.nbytes))
            tracker.free_matching(f"{tag}.chunk_kept.")
    return output  # type: ignore[return-value]
