"""PrefillOnly reproduction: an inference engine for prefill-only LLM workloads.

This package reproduces the system described in "PrefillOnly: An Inference
Engine for Prefill-only Workloads in Large Language Model Applications"
(SOSP 2025) on a simulated GPU substrate.  The public API mirrors how the paper
organises the system:

* ``repro.model`` / ``repro.hardware`` — analytical models of the LLMs and GPUs
  the paper evaluates (architecture, memory, FLOPs, latency, interconnects);
* ``repro.kvcache`` — paged KV-cache allocation, radix-tree prefix caching,
  suffix discarding/offloading;
* ``repro.execution`` — a NumPy micro-transformer and computation-graph
  machinery that validate hybrid prefilling numerically;
* ``repro.core`` — PrefillOnly itself: hybrid prefilling, the profile run, JCT
  estimation, and SRJF scheduling with continuous JCT calibration;
* ``repro.baselines`` — the PagedAttention, chunked prefill, tensor parallel,
  and pipeline parallel baselines;
* ``repro.workloads`` — the post recommendation and credit verification
  traces, the multi-tenant mixer, and JSONL trace record/replay;
* ``repro.simulation`` — the discrete-event serving simulator, arrival
  processes, routing policies, and the config-driven scenario engine;
* ``repro.cluster`` — the fleet layer: multi-replica serving with admission
  control, reactive autoscaling, and the failure lifecycle;
* ``repro.faults`` — deterministic fault injection: typed chaos schedules,
  seeded MTBF/MTTR generation, resilience accounting;
* ``repro.frontend`` — the in-process OpenAI-compatible request path;
* ``repro.analysis`` — MIL analysis, QPS sweeps, and report formatting.

Quick start::

    from repro import (
        prefillonly_engine_spec, ServingSystem, PoissonArrivalProcess,
        get_hardware_setup, get_workload, simulate,
    )

    setup = get_hardware_setup("h100")
    trace = get_workload("post-recommendation", num_users=4, posts_per_user=10)
    system = ServingSystem.for_setup(
        prefillonly_engine_spec(), setup, max_input_length=trace.max_request_tokens
    )
    requests = PoissonArrivalProcess(rate=5.0).assign(list(trace.requests))
    result = simulate(system, requests)
    print(result.summary.as_dict())
"""

from repro.core.engine import (
    EngineInstance,
    EngineSpec,
    FinishedRequest,
    build_engine,
    prefillonly_engine_spec,
)
from repro.core.jct import JCTEstimator, JCTProfiler, jct_pearson_correlation
from repro.core.scheduler import FCFSScheduler, SRJFScheduler, make_scheduler
from repro.core.hybrid_prefill import HybridPrefillPlanner
from repro.core.profile_run import run_profile
from repro.baselines import (
    all_engine_specs,
    baseline_specs,
    chunked_prefill_spec,
    get_engine_spec,
    paged_attention_spec,
    pipeline_parallel_spec,
    tensor_parallel_spec,
)
from repro.hardware import get_gpu, get_hardware_setup, list_hardware_setups
from repro.model import get_model, list_models
from repro.kvcache import (
    ClusterPrefixStore,
    CommitPolicy,
    KVCacheManager,
    TierConfig,
    TieredPrefixStore,
)
from repro.execution import MicroTransformer, MicroTransformerConfig
from repro.simulation import (
    BurstArrivalProcess,
    LeastLoadedRouter,
    MMPPArrivalProcess,
    PoissonArrivalProcess,
    PrefixAffinityRouter,
    ServingSystem,
    UserIdRouter,
    load_scenario,
    make_arrival,
    run_scenario,
    simulate,
    simulate_fleet,
)
from repro.cluster import (
    Fleet,
    QueueDepthAdmission,
    ReactiveAutoscaler,
    ReplicaSpec,
)
from repro.faults import (
    FaultEvent,
    FaultSchedule,
    fault_schedule_from_dict,
    generate_crash_schedule,
)
from repro.workloads import (
    CreditVerificationWorkload,
    PostRecommendationWorkload,
    TenantSpec,
    get_workload,
    list_workloads,
    load_trace,
    mix_tenants,
    save_trace,
)
from repro.frontend import CompletionRequest, PrefillOnlyFrontend
from repro.analysis import (
    base_throughput,
    compare_engines,
    max_input_length,
    mil_ablation,
    mil_table,
    qps_sweep,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # core
    "EngineInstance",
    "EngineSpec",
    "FinishedRequest",
    "build_engine",
    "prefillonly_engine_spec",
    "JCTEstimator",
    "JCTProfiler",
    "jct_pearson_correlation",
    "FCFSScheduler",
    "SRJFScheduler",
    "make_scheduler",
    "HybridPrefillPlanner",
    "run_profile",
    # baselines
    "all_engine_specs",
    "baseline_specs",
    "chunked_prefill_spec",
    "get_engine_spec",
    "paged_attention_spec",
    "pipeline_parallel_spec",
    "tensor_parallel_spec",
    # substrates
    "get_gpu",
    "get_hardware_setup",
    "list_hardware_setups",
    "get_model",
    "list_models",
    "CommitPolicy",
    "KVCacheManager",
    "TierConfig",
    "TieredPrefixStore",
    "ClusterPrefixStore",
    "MicroTransformer",
    "MicroTransformerConfig",
    # serving
    "BurstArrivalProcess",
    "PoissonArrivalProcess",
    "MMPPArrivalProcess",
    "make_arrival",
    "UserIdRouter",
    "LeastLoadedRouter",
    "PrefixAffinityRouter",
    "ServingSystem",
    "simulate",
    "simulate_fleet",
    "load_scenario",
    "run_scenario",
    # cluster fleet
    "Fleet",
    "ReplicaSpec",
    "QueueDepthAdmission",
    "ReactiveAutoscaler",
    # fault injection
    "FaultEvent",
    "FaultSchedule",
    "fault_schedule_from_dict",
    "generate_crash_schedule",
    # workloads
    "CreditVerificationWorkload",
    "PostRecommendationWorkload",
    "TenantSpec",
    "mix_tenants",
    "get_workload",
    "list_workloads",
    "save_trace",
    "load_trace",
    # frontend
    "CompletionRequest",
    "PrefillOnlyFrontend",
    # analysis
    "base_throughput",
    "compare_engines",
    "max_input_length",
    "mil_ablation",
    "mil_table",
    "qps_sweep",
]
