"""Exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError` so that
applications embedding the library can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An engine, model, or hardware configuration is invalid or inconsistent."""


class CapacityError(ReproError):
    """A request cannot be admitted because it exceeds the engine's capacity.

    The most common cause is a request whose token count exceeds the engine's
    maximum input length (MIL) for the configured hardware.
    """

    def __init__(self, message: str, *, required: int | None = None,
                 available: int | None = None) -> None:
        super().__init__(message)
        self.required = required
        self.available = available


class AllocationError(ReproError):
    """The KV-cache block allocator could not satisfy an allocation."""


class SchedulingError(ReproError):
    """The scheduler was asked to do something inconsistent with its state."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class InvariantViolation(SimulationError):
    """A system-wide invariant failed to hold over a finished simulation run.

    Raised by :mod:`repro.simulation.invariants` — the checks the scenario
    fuzzer asserts over every generated config (request conservation, goodput
    bounds, single KV residency, tenant-sum consistency, reproducibility).

    Attributes:
        invariant: Machine-readable name of the violated invariant.
    """

    def __init__(self, invariant: str, message: str) -> None:
        self.invariant = invariant
        super().__init__(f"invariant {invariant!r} violated: {message}")


class PerfCheckError(ReproError):
    """A perf-harness identity cross-check failed (results diverged).

    Raised — never ``assert``-ed, so ``python -O`` cannot strip the check —
    when a memoized run differs from an unmemoized one or a parallel run
    differs from a serial one.  Either means a correctness bug, not a perf
    problem.
    """


class WorkloadError(ReproError):
    """A workload generator was configured with invalid parameters."""


class UnknownNameError(ReproError):
    """A registry lookup used a name that is not registered.

    Raised by the name-based registries (workloads, arrival processes,
    routers, ...) so callers can distinguish a typo from a misconfigured
    generator, and can present the valid choices to the user.

    Attributes:
        kind: What was being looked up (``"workload"``, ``"arrival process"``, ...).
        name: The name that failed to resolve.
        available: The registered names, sorted.
    """

    def __init__(self, kind: str, name: str, available: list[str] | tuple[str, ...]) -> None:
        self.kind = kind
        self.name = name
        self.available = sorted(available)
        super().__init__(
            f"unknown {kind} {name!r}; available: {', '.join(self.available)}"
        )


class UnknownWorkloadError(UnknownNameError, WorkloadError):
    """A workload registry lookup used an unregistered name.

    Subclasses :class:`WorkloadError` as well, so existing ``except
    WorkloadError`` handlers keep working.
    """

    def __init__(self, name: str, available: list[str] | tuple[str, ...]) -> None:
        super().__init__("workload", name, available)


class SpecError(ReproError):
    """A declarative spec config is invalid (see :mod:`repro.spec`).

    The uniform base of every config-parsing failure in the spec layer:
    unknown keys, missing required keys, type mismatches, out-of-range
    values, and failed cross-field validators all derive from it.

    Attributes:
        path: Dotted JSON path of the offending config value
            (``"faults.events[2].kind"``); empty for document-level errors.
    """

    def __init__(self, message: str, *, path: str = "") -> None:
        self.path = path
        super().__init__(f"{path}: {message}" if path else message)


class SpecVersionError(SpecError):
    """A spec config declared a ``"version"`` this build does not support.

    Attributes:
        version: The unsupported version the config asked for.
        supported: The versions this build can parse, ascending.
    """

    def __init__(self, version, supported: tuple[int, ...], *, path: str = "") -> None:
        self.version = version
        self.supported = tuple(sorted(supported))
        names = ", ".join(str(v) for v in self.supported)
        super().__init__(
            f"unsupported spec version {version!r}; supported: {names}",
            path=path,
        )


class ScenarioError(ReproError):
    """A scenario configuration is invalid, or a trace file is malformed."""


class ScenarioSpecError(SpecError, ScenarioError):
    """A scenario config failed spec-layer validation.

    Subclasses :class:`ScenarioError` as well, so existing ``except
    ScenarioError`` handlers keep catching config typos.
    """


class TierError(ReproError):
    """A tiered prefix-cache configuration or operation is invalid."""


class TierSpecError(SpecError, TierError):
    """A ``"kv_tiers"`` config block failed spec-layer validation.

    Subclasses :class:`TierError` as well, so existing ``except TierError``
    handlers keep catching configuration typos.
    """


class UnknownTierError(UnknownNameError, TierError):
    """A tier configuration referenced a tier name that does not exist.

    Subclasses :class:`TierError` as well, so ``except TierError`` handlers
    catch configuration typos alongside capacity problems.

    Attributes:
        path: Dotted JSON path of the offending key (``"kv_tiers.tiers.hots"``),
            so scenario-config errors point at the exact config location.
    """

    def __init__(self, name: str, available: list[str] | tuple[str, ...], *,
                 path: str = "kv_tiers.tiers") -> None:
        self.path = path
        super().__init__("tier", name, available)
        # UnknownNameError fixes args in __init__; re-raise with the path prefixed.
        self.args = (f"{path}: {self.args[0]}",)


class FaultError(ReproError):
    """A fault-injection configuration or operation is invalid."""


class UnknownFaultError(UnknownNameError, FaultError):
    """A fault config used a fault kind that does not exist.

    Subclasses :class:`FaultError` as well, so ``except FaultError`` handlers
    catch configuration typos alongside schedule problems.

    Attributes:
        path: Dotted JSON path of the offending key
            (``"faults.events[2].kind"``), so scenario-config errors point at
            the exact config location.
    """

    def __init__(self, name: str, available: list[str] | tuple[str, ...], *,
                 path: str = "faults.events") -> None:
        self.path = path
        super().__init__("fault kind", name, available)
        # UnknownNameError fixes args in __init__; re-raise with the path prefixed.
        self.args = (f"{path}: {self.args[0]}",)


class FaultScheduleError(SpecError, FaultError):
    """A fault schedule is malformed (bad keys, times, targets, or magnitudes).

    Carries the spec layer's dotted JSON ``path`` of the offending value and
    is catchable both as a :class:`SpecError` (uniform config handling) and
    as a :class:`FaultError` (domain handling).
    """

    def __init__(self, message: str, *, path: str = "faults") -> None:
        super().__init__(message, path=path)


class ResilienceError(ReproError):
    """A resilience-policy configuration or operation is invalid."""


class ResilienceSpecError(SpecError, ResilienceError):
    """A resilience policy block is malformed (bad keys, times, or budgets).

    Carries the spec layer's dotted JSON ``path`` of the offending value and
    is catchable both as a :class:`SpecError` (uniform config handling) and
    as a :class:`ResilienceError` (domain handling).
    """

    def __init__(self, message: str, *, path: str = "resilience") -> None:
        super().__init__(message, path=path)


class TierCapacityError(TierError):
    """A tier was configured with an invalid capacity.

    Attributes:
        tier: The tier the capacity belongs to (``"host"``, ``"cluster"``).
        path: Dotted JSON path of the offending config value.
    """

    def __init__(self, message: str, *, tier: str, path: str = "kv_tiers") -> None:
        self.tier = tier
        self.path = path
        super().__init__(f"{path}: {message}")


class ObsError(ReproError):
    """An observability recording, export, or parse operation is invalid."""


class TraceSchemaError(ObsError):
    """A JSON document failed validation against a checked-in trace schema.

    Attributes:
        path: JSON-pointer-style path of the offending value
            (``"traceEvents[3].ph"``); empty for document-level failures.
    """

    def __init__(self, message: str, *, path: str = "") -> None:
        self.path = path
        super().__init__(f"{path}: {message}" if path else message)
