"""Exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError` so that
applications embedding the library can catch a single base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An engine, model, or hardware configuration is invalid or inconsistent."""


class CapacityError(ReproError):
    """A request cannot be admitted because it exceeds the engine's capacity.

    The most common cause is a request whose token count exceeds the engine's
    maximum input length (MIL) for the configured hardware.
    """

    def __init__(self, message: str, *, required: int | None = None,
                 available: int | None = None) -> None:
        super().__init__(message)
        self.required = required
        self.available = available


class AllocationError(ReproError):
    """The KV-cache block allocator could not satisfy an allocation."""


class SchedulingError(ReproError):
    """The scheduler was asked to do something inconsistent with its state."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class PerfCheckError(ReproError):
    """A perf-harness identity cross-check failed (results diverged).

    Raised — never ``assert``-ed, so ``python -O`` cannot strip the check —
    when a memoized run differs from an unmemoized one or a parallel run
    differs from a serial one.  Either means a correctness bug, not a perf
    problem.
    """


class WorkloadError(ReproError):
    """A workload generator was configured with invalid parameters."""


class UnknownNameError(ReproError):
    """A registry lookup used a name that is not registered.

    Raised by the name-based registries (workloads, arrival processes,
    routers, ...) so callers can distinguish a typo from a misconfigured
    generator, and can present the valid choices to the user.

    Attributes:
        kind: What was being looked up (``"workload"``, ``"arrival process"``, ...).
        name: The name that failed to resolve.
        available: The registered names, sorted.
    """

    def __init__(self, kind: str, name: str, available: list[str] | tuple[str, ...]) -> None:
        self.kind = kind
        self.name = name
        self.available = sorted(available)
        super().__init__(
            f"unknown {kind} {name!r}; available: {', '.join(self.available)}"
        )


class UnknownWorkloadError(UnknownNameError, WorkloadError):
    """A workload registry lookup used an unregistered name.

    Subclasses :class:`WorkloadError` as well, so existing ``except
    WorkloadError`` handlers keep working.
    """

    def __init__(self, name: str, available: list[str] | tuple[str, ...]) -> None:
        super().__init__("workload", name, available)


class ScenarioError(ReproError):
    """A scenario configuration is invalid, or a trace file is malformed."""


class TierError(ReproError):
    """A tiered prefix-cache configuration or operation is invalid."""


class UnknownTierError(UnknownNameError, TierError):
    """A tier configuration referenced a tier name that does not exist.

    Subclasses :class:`TierError` as well, so ``except TierError`` handlers
    catch configuration typos alongside capacity problems.

    Attributes:
        path: Dotted JSON path of the offending key (``"kv_tiers.tiers.hots"``),
            so scenario-config errors point at the exact config location.
    """

    def __init__(self, name: str, available: list[str] | tuple[str, ...], *,
                 path: str = "kv_tiers.tiers") -> None:
        self.path = path
        super().__init__("tier", name, available)
        # UnknownNameError fixes args in __init__; re-raise with the path prefixed.
        self.args = (f"{path}: {self.args[0]}",)


class FaultError(ReproError):
    """A fault-injection configuration or operation is invalid."""


class UnknownFaultError(UnknownNameError, FaultError):
    """A fault config used a fault kind that does not exist.

    Subclasses :class:`FaultError` as well, so ``except FaultError`` handlers
    catch configuration typos alongside schedule problems.

    Attributes:
        path: Dotted JSON path of the offending key
            (``"faults.events[2].kind"``), so scenario-config errors point at
            the exact config location.
    """

    def __init__(self, name: str, available: list[str] | tuple[str, ...], *,
                 path: str = "faults.events") -> None:
        self.path = path
        super().__init__("fault kind", name, available)
        # UnknownNameError fixes args in __init__; re-raise with the path prefixed.
        self.args = (f"{path}: {self.args[0]}",)


class FaultScheduleError(FaultError):
    """A fault schedule is malformed (bad keys, times, targets, or magnitudes).

    Attributes:
        path: Dotted JSON path of the offending config value.
    """

    def __init__(self, message: str, *, path: str = "faults") -> None:
        self.path = path
        super().__init__(f"{path}: {message}")


class TierCapacityError(TierError):
    """A tier was configured with an invalid capacity.

    Attributes:
        tier: The tier the capacity belongs to (``"host"``, ``"cluster"``).
        path: Dotted JSON path of the offending config value.
    """

    def __init__(self, message: str, *, tier: str, path: str = "kv_tiers") -> None:
        self.tier = tier
        self.path = path
        super().__init__(f"{path}: {message}")
