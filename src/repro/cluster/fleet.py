"""A fleet of engine replicas behind one entry point.

:class:`Fleet` generalises :class:`~repro.simulation.server.ServingSystem`
from "one homogeneous engine layout derived from a cluster spec" to a
production-shaped serving tier:

* N replicas, each a full :class:`~repro.core.engine.EngineInstance`, built
  from per-replica :class:`ReplicaSpec` records so GPU types and engine
  flavours may differ across the fleet;
* a pluggable :class:`~repro.simulation.routing.Router` (user-id by default,
  matching the paper's deployment rule) that is kept in sync with the replica
  set as it changes;
* optional queue-depth :class:`~repro.cluster.admission.AdmissionPolicy` load
  shedding in front of the router;
* an optional :class:`~repro.cluster.autoscaler.Autoscaler` that adds replicas
  cloned from a template spec and drains the highest-indexed replica on
  scale-down (drained replicas stop receiving traffic, finish their queue,
  and retire with their completion records preserved).

Replica clocks are advanced lazily: an event at simulated time *t* only
advances replicas whose next internal event is due at or before *t*, so a
mostly idle fleet costs almost nothing per event regardless of its size.  By
default the fleet finds those due replicas with a heap-based
:class:`~repro.simulation.events.EventQueue` (one live entry per serving
replica, refreshed whenever a replica is submitted to, advanced, or scaled)
instead of scanning every replica per event; construct with
``use_event_queue=False`` to get the original linear scans — the results are
identical, and the flag exists for the before/after benchmark.  The driving
loop lives in :func:`repro.simulation.simulator.simulate_fleet`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import EngineInstance, EngineSpec, FinishedRequest, kv_block_bytes
from repro.errors import ConfigurationError, SimulationError
from repro.faults import DEFAULT_WARM_RESTORE_BLOCKS, FaultEvent, ResilienceCounters
from repro.hardware.cluster import HardwareSetup
from repro.hardware.gpu import GPUSpec
from repro.hardware.interconnect import Interconnect
from repro.kvcache.manager import CommitPolicy
from repro.kvcache.tiers import ClusterPrefixStore, TierConfig, build_cluster_store
from repro.model.config import ModelConfig, get_model
from repro.obs.recorder import GLOBAL_KEY, NULL_RECORDER
from repro.resilience.config import ResilienceConfig
from repro.resilience.policy import PolicyRuntime, HealthAwareRouter, TrackedRequest
from repro.simulation.events import EventQueue
from repro.simulation.routing import Router, UserIdRouter
from repro.cluster.admission import AdmissionPolicy
from repro.cluster.autoscaler import Autoscaler, ScaleEvent
from repro.workloads.trace import Request

#: Policy-timer slots multiplexed into one EventQueue: the timer key of a
#: request is ``request_id * 4 + slot`` (base-4 keeps a spare slot).
_TIMER_DEADLINE, _TIMER_HEDGE, _TIMER_RETRY = 0, 1, 2


@dataclass(frozen=True)
class ReplicaSpec:
    """Everything needed to stand up one replica of the fleet.

    Attributes:
        engine: Engine flavour the replica runs.
        gpu: GPU type of each shard of the replica.
        interconnect: Shard-to-shard link (required when the engine spec uses
            more than one GPU per instance).
    """

    engine: EngineSpec
    gpu: GPUSpec
    interconnect: Interconnect | None = None


@dataclass
class _ReplicaState:
    """Bookkeeping the fleet keeps per replica (live, draining, retired, or crashed)."""

    instance: EngineInstance
    created_at: float
    spec: ReplicaSpec | None = None
    key: int = 0
    retired_at: float | None = None
    draining: bool = False
    #: Killed by a fault (crash ≠ drain: nothing finished, nothing flushed).
    crashed: bool = False
    #: Built by fault recovery — the replicas whose tier hits measure the
    #: warm-restore hit rate.
    recovered: bool = False


@dataclass
class FleetStats:
    """Counters the fleet accumulates while serving."""

    num_submitted: int = 0
    num_routed: int = 0
    num_shed: int = 0
    num_scale_ups: int = 0
    num_scale_downs: int = 0
    peak_replicas: int = 0


class Fleet:
    """N engine replicas behind a router, admission control, and an autoscaler.

    Args:
        replica_specs: One :class:`ReplicaSpec` per initial replica (at least
            one).  The first entry doubles as the template the autoscaler
            clones when growing the fleet.
        model: Model served by every replica.
        max_input_length: MIL each replica is provisioned for.
        router: Routing policy; defaults to the paper's user-id router.
        admission: Optional load-shedding policy consulted before routing.
        autoscaler: Optional reactive autoscaler.
        name: Fleet name used in reports.
        use_event_queue: Track per-replica next-event times in a heap (default)
            instead of scanning every replica per event.  Results are
            identical; ``False`` restores the original scans for comparison.
        engine_fast_paths: Build replicas with the engine-level fast paths
            (heap-based prefix-cache eviction, incremental JCT-calibration
            lookups).  Results are identical; the flag exists for the
            old-vs-new event-loop benchmark.
        tier_config: Optional tiered prefix-cache configuration
            (:class:`~repro.kvcache.tiers.TierConfig`).  When enabled the
            fleet builds one shared cluster (L3) store, wires every replica —
            including autoscaled clones — into it, warms the routed replica
            before dispatch (router-hint prefetch), and drains retiring
            replicas' hot prefixes into the shared store on scale-down.
        cluster_service: Optional wrapper applied to the freshly built L3
            store before any replica binds a reference to it — how sharded
            runs interpose the versioned, latency-stamped
            :class:`~repro.kvcache.tiers.ShardStoreBus` message facade.  Must
            be transparent (pure delegation) so results stay byte-identical.
        recorder: Optional :class:`~repro.obs.recorder.TraceRecorder` the
            fleet, its replicas, and their tier stores report span events to;
            None installs the no-op null recorder (the default, behaviour
            identical to a build without the subsystem).
        policies: Optional :class:`~repro.resilience.ResilienceConfig` of
            client-side failure policies — per-request deadlines, seeded
            retry/backoff, hedged requests, circuit-breaker health routing,
            and brownout-tier degradation (see ``docs/RESILIENCE.md``).
            ``None`` or an inactive config is behaviour-identical to a build
            without the subsystem.
    """

    def __init__(self, replica_specs: list[ReplicaSpec], model: ModelConfig, *,
                 max_input_length: int,
                 router: Router | None = None,
                 admission: AdmissionPolicy | None = None,
                 autoscaler: Autoscaler | None = None,
                 name: str = "fleet",
                 use_event_queue: bool = True,
                 engine_fast_paths: bool = True,
                 tier_config: TierConfig | None = None,
                 cluster_service=None,
                 recorder=None,
                 policies: ResilienceConfig | None = None) -> None:
        if not replica_specs:
            raise ConfigurationError("a fleet needs at least one replica spec")
        self.name = name
        #: The observability recorder every hook site reports to; the shared
        #: no-op :data:`~repro.obs.recorder.NULL_RECORDER` unless the run is
        #: traced (see ``docs/OBSERVABILITY.md``).
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self.model = model
        self.max_input_length = max_input_length
        self.template = replica_specs[0]
        self.admission = admission
        self.autoscaler = autoscaler
        self._engine_fast_paths = engine_fast_paths
        self.tier_config = tier_config if tier_config is not None and tier_config.enabled else None
        self.cluster_store: ClusterPrefixStore | None = None
        if self.tier_config is not None:
            block_sizes = {spec.engine.kv_block_size for spec in replica_specs}
            block_bytes = {kv_block_bytes(spec.engine, model) for spec in replica_specs}
            if len(block_sizes) > 1 or len(block_bytes) > 1:
                raise ConfigurationError(
                    "tiering requires a fleet-wide KV block geometry (the shared "
                    "cluster store keys and sizes blocks by content hash); got "
                    f"block sizes {sorted(block_sizes)} and "
                    f"block bytes {sorted(block_bytes)}"
                )
            self.cluster_store = build_cluster_store(
                self.tier_config, block_bytes=kv_block_bytes(self.template.engine, model)
            )
            if self.cluster_store is not None and cluster_service is not None:
                # Wrap the L3 store in a cross-shard service facade (e.g.
                # repro.kvcache.tiers.ShardStoreBus) *before* replicas bind
                # their references, so every tier operation flows through it.
                self.cluster_store = cluster_service(self.cluster_store)
        self.stats = FleetStats()
        #: Replicas advanced by the most recent :meth:`advance_to` call —
        #: identical on the heap and scan paths, so the driving loop can count
        #: processed events consistently (see
        #: :class:`repro.simulation.simulator.FleetSimulationResult`).
        self.last_advance_count = 0
        self.scale_events: list[ScaleEvent] = []
        #: Fault/recovery counters (all zero until a fault is injected); see
        #: :class:`repro.faults.ResilienceCounters`.
        self.resilience = ResilienceCounters()
        #: One dict row per delivered fault event, in delivery order.
        self.fault_log: list[dict] = []
        #: Request ids re-routed after a crash (per-tenant retry accounting).
        self.retried_request_ids: list[int] = []
        #: L3 -> L2 restore budget (blocks) applied on fault recovery; the
        #: simulator overrides it from the schedule's ``warm_restore_blocks``.
        self.warm_restore_blocks = DEFAULT_WARM_RESTORE_BLOCKS
        self._brownout = 1.0
        self._shed: list[FinishedRequest] = []
        self._replica_seq = 0
        self._events: EventQueue | None = EventQueue() if use_event_queue else None
        self._states_by_key: dict[int, _ReplicaState] = {}
        self._active: list[_ReplicaState] = [
            self._build_replica(spec, now=0.0) for spec in replica_specs
        ]
        self._draining: list[_ReplicaState] = []
        self._retired: list[_ReplicaState] = []
        self._crashed: list[_ReplicaState] = []
        #: Logical fault-target id -> current replica key.  Fault events
        #: address replicas by the *logical* slot (initially the build index),
        #: so a crash/recover/crash cycle keeps targeting the same slot even
        #: though recovery builds a fresh instance under a new key.
        self._fault_targets: dict[int, int] = {
            index: index for index in range(len(self._active))
        }
        self._crash_times: dict[int, float] = {}
        #: The resilience-policy runtime, or None (no policy overhead at all;
        #: behaviour byte-identical to a build without the subsystem).
        self.policies: PolicyRuntime | None = None
        #: Terminal records of policy-cancelled requests (deadline misses,
        #: exhausted retries) — merged into :meth:`rejected_requests`.
        self._cancelled: list[FinishedRequest] = []
        self._policy_events = EventQueue()
        self._tracked: dict[int, TrackedRequest] = {}
        if policies is not None and policies.active:
            self.policies = PolicyRuntime(
                policies,
                on_breaker_transition=self._on_breaker_transition,
                on_degrade_transition=self._on_degrade_transition,
            )
        self.router: Router = (
            router if router is not None else UserIdRouter(len(self._active))
        )
        if self.policies is not None and self.policies.breakers is not None:
            self.router = HealthAwareRouter(self.router, self.policies.breakers)
        self.router.resize(len(self._active))
        self._sync_router()
        self.stats.peak_replicas = len(self._active)

    # ----------------------------------------------------------- construction

    @classmethod
    def homogeneous(cls, engine: EngineSpec, model: ModelConfig, gpu: GPUSpec, *,
                    num_replicas: int, max_input_length: int,
                    interconnect: Interconnect | None = None,
                    **kwargs) -> "Fleet":
        """Build a fleet of ``num_replicas`` identical replicas."""
        if num_replicas < 1:
            raise ConfigurationError("num_replicas must be at least 1")
        spec = ReplicaSpec(engine=engine, gpu=gpu, interconnect=interconnect)
        return cls([spec] * num_replicas, model,
                   max_input_length=max_input_length, **kwargs)

    @classmethod
    def for_setup(cls, engine: EngineSpec, setup: HardwareSetup, *,
                  max_input_length: int, num_replicas: int | None = None,
                  **kwargs) -> "Fleet":
        """Build a fleet on one of the paper's hardware setups.

        ``num_replicas`` defaults to the paper's deployment rule: one replica
        per ``engine.gpus_per_instance`` GPUs of the setup's cluster.
        """
        if num_replicas is None:
            num_replicas = max(setup.cluster.num_gpus // engine.gpus_per_instance, 1)
        return cls.homogeneous(
            engine, get_model(setup.model_name), setup.cluster.gpu,
            num_replicas=num_replicas,
            max_input_length=max_input_length,
            interconnect=setup.cluster.interconnect,
            **kwargs,
        )

    def _build_replica(self, spec: ReplicaSpec, *, now: float) -> _ReplicaState:
        index = self._replica_seq
        self._replica_seq += 1
        instance = EngineInstance(
            spec.engine, self.model, spec.gpu,
            interconnect=spec.interconnect,
            max_input_length=self.max_input_length,
            name=f"{spec.engine.name}-{index}",
            fast_paths=self._engine_fast_paths,
            tier_config=self.tier_config,
            cluster_store=self.cluster_store,
        )
        instance.obs = self.obs
        instance.obs_key = index
        self.obs.register_replica(index, instance.name)
        if instance.kv.tiers is not None:
            instance.kv.tiers.obs = self.obs
            instance.kv.tiers.obs_key = index
        state = _ReplicaState(instance=instance, created_at=now, spec=spec, key=index)
        if self._brownout != 1.0:
            # A replica built mid-brownout (autoscale or fault recovery)
            # suffers the degraded interconnect like everyone else.
            instance.kv.set_transfer_cost_multiplier(self._brownout)
        self._states_by_key[index] = state
        self._refresh_event(state)
        return state

    def _refresh_event(self, state: _ReplicaState) -> None:
        """Record the replica's current next-event time in the event queue."""
        if self._events is not None:
            self._events.update(state.key, state.instance.next_event_time())

    # ---------------------------------------------------------------- state

    @property
    def num_replicas(self) -> int:
        """Number of replicas currently receiving traffic."""
        return len(self._active)

    @property
    def replicas(self) -> list[EngineInstance]:
        """The routable engine instances, in router index order."""
        return [state.instance for state in self._active]

    @property
    def num_shed(self) -> int:
        """Requests rejected by admission control so far."""
        return len(self._shed)

    def queue_depths(self) -> list[int]:
        """Waiting-queue depth of every routable replica."""
        return [state.instance.num_waiting for state in self._active]

    def obs_gauge_rows(self) -> list[tuple]:
        """Per-replica gauge rows for the metrics recorder's sample boundaries."""
        return [
            (
                "queue_depth",
                (("replica", state.instance.name),),
                state.instance.num_waiting,
            )
            for state in self._active
        ]

    def is_idle(self) -> bool:
        """True when no replica (routable or draining) has work left."""
        return all(
            state.instance.is_idle() for state in self._active + self._draining
        )

    @property
    def engine_fast_paths(self) -> bool:
        """Whether replicas are built with the engine-level fast paths."""
        return self._engine_fast_paths

    def shard_manifest(self) -> list[tuple[int, str, ReplicaSpec | None]]:
        """``(key, instance name, spec)`` per routable replica, in router order.

        The picklable description :mod:`repro.simulation.sharded` partitions
        across shards — everything a worker process needs (together with the
        fleet's model and MIL) to rebuild a replica byte-identically.
        """
        return [
            (state.key, state.instance.name, state.spec)
            for state in self._active
        ]

    def shard_events(self, queue) -> None:
        """Swap event discovery onto a sharded queue with the same interface.

        ``queue`` (a :class:`~repro.simulation.sharded.ShardedEventQueue`)
        must reproduce the single-queue drain order; every live next-event
        time is re-registered so the swap is seamless mid-run.  All later
        ``update`` / ``discard`` calls — including fault deliveries for a
        replica — land in the shard that owns the replica's key.
        """
        if self._events is None:
            raise ConfigurationError(
                "sharded event discovery requires the event-queue fleet path "
                "(use_event_queue=True)"
            )
        for state in self._all_serving():
            queue.update(state.key, state.instance.next_event_time())
        self._events = queue

    def _all_serving(self) -> list[_ReplicaState]:
        return self._active + self._draining

    def _all_states(self) -> list[_ReplicaState]:
        """Every replica the fleet ever ran, for results collection.

        Serving first, then retired, then crashed — with no faults the
        crashed list is empty and the order is exactly the seed's.
        """
        return self._all_serving() + self._retired + self._crashed

    def _sync_router(self) -> None:
        self.router.observe_instances(self.replicas)

    # --------------------------------------------------------------- serving

    def submit(self, request: Request, now: float) -> EngineInstance | None:
        """Admit, route, and submit one request.

        Returns the replica the request landed on, or ``None`` when admission
        control shed it (a rejection record is kept either way).  A request
        arriving while every replica is crashed is unserved: it is recorded
        as shed (the resilience summary counts it separately) — production
        has nowhere to park a request when the whole fleet is down.
        """
        self.stats.num_submitted += 1
        self.obs.emit(now, GLOBAL_KEY, "submit", request=request.request_id)
        if self.autoscaler is not None:
            self.autoscaler.observe_arrival(now)
        if self.policies is not None:
            self._policy_on_submit(now)
        if not self._active:
            self._record_unserved(request, now, arrival_time=now)
            return None
        state = self._admit_and_route(request, now, arrival_time=now,
                                      shed_reason_prefix="")
        if state is None:
            return None
        return self._dispatch(request, state, enqueue_time=now, now=now)

    def _admit_and_route(self, request: Request, now: float, *,
                         arrival_time: float,
                         shed_reason_prefix: str) -> _ReplicaState | None:
        """Admission + routing shared by :meth:`submit` and :meth:`_resubmit`.

        Returns the target replica, or None when admission shed the request
        (the rejection record is kept, stamped with ``arrival_time``).
        """
        if self.policies is not None and not self._policy_admit(
                request, now, arrival_time=arrival_time,
                shed_reason_prefix=shed_reason_prefix):
            return None
        if self.admission is not None or self.router.needs_queue_depths:
            depths = self.queue_depths()
        else:
            depths = []
        if self.admission is not None:
            decision = self.admission.admit(request, depths, now)
            if not decision.admitted:
                self.stats.num_shed += 1
                self._shed.append(self._rejection_record(
                    request, arrival_time=arrival_time, now=now,
                    reason=f"{shed_reason_prefix}{decision.reason}",
                ))
                self.obs.emit(
                    now, GLOBAL_KEY, "shed", request=request.request_id,
                    reason=f"{shed_reason_prefix}{decision.reason}",
                )
                return None
        state = self._active[self.router.route(request, depths)]
        self.obs.emit(now, state.key, "route", request=request.request_id,
                      replica=state.instance.name)
        return state

    def _dispatch(self, request: Request, state: _ReplicaState, *,
                  enqueue_time: float, now: float) -> EngineInstance:
        """Hand a routed request to its replica and advance that replica."""
        if (self.tier_config is not None and self.tier_config.prefetch
                and not self._degraded()):
            # Router-hint prefetch: the routing decision is the hint that the
            # target replica is about to need this prefix — warm its L1 with
            # whatever continuation sits in the host/cluster tiers while the
            # request is still queueing.  Brownout tier >= 1 pauses this
            # warming traffic (see docs/RESILIENCE.md).
            state.instance.kv.prefetch_tiers(
                request.block_hashes(state.instance.spec.kv_block_size), now=now
            )
        accepted = state.instance.submit(request, enqueue_time)
        self.stats.num_routed += 1
        if self.policies is not None:
            if accepted:
                self._policy_track(request, state, now)
            else:
                # The engine wrote the terminal (MIL) rejection record;
                # whatever policy state the request had is moot.
                self._policy_abandon(request.request_id)
        self._observe(state.instance.advance_to(now))
        self._refresh_event(state)
        return state.instance

    def _rejection_record(self, request: Request, *, arrival_time: float,
                          now: float, reason: str) -> FinishedRequest:
        """Build the fleet-level rejection record for a shed request."""
        return FinishedRequest(
            request_id=request.request_id,
            user_id=request.user_id,
            num_tokens=request.num_tokens,
            cached_tokens=0,
            arrival_time=arrival_time,
            start_time=now,
            finish_time=now,
            instance_name=self.name,
            engine_name=self.name,
            rejected=True,
            rejection_reason=reason,
        )

    def next_event_time(self) -> float | None:
        """Earliest internal event across routable and draining replicas."""
        if self._events is not None:
            return self._events.next_time()
        times = [
            t for t in (
                state.instance.next_event_time() for state in self._all_serving()
            )
            if t is not None
        ]
        return min(times) if times else None

    def advance_to(self, now: float) -> list[FinishedRequest]:
        """Advance replicas whose next event is due at or before ``now``.

        Lazily skips replicas with no due event (their state cannot change
        before their own next event fires), retires draining replicas that
        have emptied, and returns the requests that finished on the way.
        """
        finished: list[FinishedRequest] = []
        advanced = 0
        if self._events is not None:
            due = self._events.pop_due(now)
            advanced = len(due)
            if len(due) == 1:
                state = self._states_by_key[due[0]]
                finished.extend(state.instance.advance_to(now))
                self._refresh_event(state)
            elif due:
                # Advance in serving order (actives, then draining) so the
                # autoscaler observes completions in the same order the
                # linear-scan path produced.
                due_keys = set(due)
                for state in self._all_serving():
                    if state.key in due_keys:
                        finished.extend(state.instance.advance_to(now))
                        self._refresh_event(state)
        else:
            for state in self._all_serving():
                next_time = state.instance.next_event_time()
                if next_time is None or next_time > now:
                    continue
                finished.extend(state.instance.advance_to(now))
                advanced += 1
        self.last_advance_count = advanced
        finished = self._observe(finished)
        self._retire_drained(now)
        return finished

    def _observe(self, finished: list[FinishedRequest]) -> list[FinishedRequest]:
        """Run completion hooks; returns the records that remain terminal.

        With policies on, hedge-loser duplicates are filtered out (their
        records are discarded so one request never double-counts) and
        completions triggered by loser cancellation chain through the same
        hooks.
        """
        if self.policies is not None and finished:
            finished = [
                record for record in finished if self._policy_finish(record)
            ]
        if self.autoscaler is not None:
            for record in finished:
                self.autoscaler.observe_completion(record)
        return finished

    # ------------------------------------------------------------ autoscaling

    def maybe_autoscale(self, now: float) -> ScaleEvent | None:
        """Ask the autoscaler for a vote and apply it; return the event, if any."""
        if self.autoscaler is None:
            return None
        vote = self.autoscaler.decide(now, len(self._active), self.queue_depths())
        if vote > 0:
            return self.scale_up(now, reason=self.autoscaler.last_reason)
        if vote < 0 and len(self._active) > 1:
            return self.scale_down(now, reason=self.autoscaler.last_reason)
        return None

    def scale_up(self, now: float, *, reason: str = "manual") -> ScaleEvent:
        """Add one replica cloned from the template spec."""
        state = self._build_replica(self.template, now=now)
        self._active.append(state)
        self.router.resize(len(self._active))
        self._sync_router()
        self.stats.num_scale_ups += 1
        self.stats.peak_replicas = max(self.stats.peak_replicas, len(self._active))
        event = ScaleEvent(time=now, direction="up",
                           num_replicas=len(self._active), reason=reason)
        self.scale_events.append(event)
        self.obs.emit(now, GLOBAL_KEY, "scale", direction="up",
                      replicas=len(self._active), reason=reason)
        return event

    def scale_down(self, now: float, *, reason: str = "manual") -> ScaleEvent:
        """Drain the highest-indexed replica (it keeps running until empty)."""
        if len(self._active) <= 1:
            raise ConfigurationError("cannot scale below one replica")
        state = self._active.pop()
        state.draining = True
        self._draining.append(state)
        self.router.resize(len(self._active))
        self._sync_router()
        self.stats.num_scale_downs += 1
        event = ScaleEvent(time=now, direction="down",
                           num_replicas=len(self._active), reason=reason)
        self.scale_events.append(event)
        self.obs.emit(now, GLOBAL_KEY, "scale", direction="down",
                      replicas=len(self._active), reason=reason)
        self._retire_drained(now)
        return event

    def _retire_drained(self, now: float) -> None:
        if not self._draining:
            return
        still_draining: list[_ReplicaState] = []
        for state in self._draining:
            if state.instance.is_idle():
                state.retired_at = now
                self._flush_retiring(state)
                self._retired.append(state)
                if self._events is not None:
                    self._events.discard(state.key)
            else:
                still_draining.append(state)
        self._draining = still_draining

    def _flush_retiring(self, state: _ReplicaState) -> None:
        """Flush a retiring replica's cached prefixes through its commit policy.

        A replica only retires once idle, so no execution lease can be
        outstanding (``KVCacheManager.drain`` enforces it).  With tiering the
        radix tree and host tier publish into the fleet-shared cluster store,
        where surviving replicas can fetch the prefixes instead of recomputing
        them; engines whose commit policy does not cache (``NONE``) flush
        nothing.
        """
        if state.instance.spec.commit_policy is CommitPolicy.NONE:
            return
        state.instance.kv.drain()

    # --------------------------------------------------------------- faults

    def apply_fault(self, event: FaultEvent, now: float) -> bool:
        """Deliver one :class:`~repro.faults.FaultEvent` to the fleet.

        Called by :func:`repro.simulation.simulator.simulate_fleet` when the
        schedule's next event wins the event merge.  Events whose target
        cannot be acted on (an already-crashed replica, an L3 outage without
        a cluster store) are skipped, not errors — a chaos schedule is
        generated against a nominal fleet and the real one may have drifted.
        Every delivery is appended to :attr:`fault_log`; returns whether the
        event was applied.
        """
        kind = event.kind
        if kind == "crash":
            applied, detail = self._fault_crash(event.replica, now)
        elif kind == "recover":
            applied, detail = self._fault_recover(event.replica, now)
        elif kind in ("slow", "slow-end"):
            applied, detail = self._fault_slow(
                event.replica, event.multiplier if kind == "slow" else 1.0
            )
            if applied and kind == "slow":
                self.resilience.num_slow_events += 1
        elif kind in ("brownout", "brownout-end"):
            self._set_brownout(event.multiplier if kind == "brownout" else 1.0)
            applied, detail = True, f"transfer-cost multiplier {self._brownout:g}"
            if kind == "brownout":
                self.resilience.num_brownouts += 1
        elif kind in ("outage", "outage-end"):
            if self.cluster_store is None:
                applied, detail = False, "fleet has no cluster store"
            else:
                self.cluster_store.set_available(kind == "outage-end")
                applied, detail = True, (
                    "cluster store unreachable" if kind == "outage"
                    else "cluster store restored"
                )
                if kind == "outage":
                    self.resilience.num_outages += 1
        elif kind == "spot_preempt":
            applied, detail = self._fault_preempt_notice(event.replica, now)
        elif kind == "spot_preempt-kill":
            state = self._fault_state(event.replica)
            if (state is None
                    or (state not in self._active
                        and state not in self._draining)):
                # Finished draining before the warning expired: a clean exit,
                # nothing left to kill.
                applied, detail = False, "replica already drained"
            else:
                applied, detail = self._fault_crash(
                    event.replica, now, allow_draining=True)
                if applied:
                    detail = f"preemption kill: {detail}"
        else:
            raise SimulationError(f"unknown fault event kind {kind!r}")
        if applied:
            self.resilience.num_faults_applied += 1
        else:
            self.resilience.num_faults_skipped += 1
        self.obs.emit(
            now, GLOBAL_KEY, "fault", fault=kind,
            replica=event.replica if event.replica is not None else "-",
            applied=applied, detail=detail,
        )
        self.fault_log.append({
            "time_s": round(now, 3),
            "kind": kind,
            "replica": event.replica if event.replica is not None else "-",
            "applied": applied,
            "detail": detail,
        })
        return applied

    def _fault_state(self, logical: int | None) -> _ReplicaState | None:
        """Resolve a logical fault target to its current replica state."""
        if logical is None:
            return None
        key = self._fault_targets.get(logical, logical)
        return self._states_by_key.get(key)

    def _fault_preempt_notice(self, logical: int | None,
                              now: float) -> tuple[bool, str]:
        """Spot-preemption warning: stop routing to the replica, let it drain.

        The replica keeps executing its queue (like a scale-down drain); if
        it empties before the paired ``spot_preempt-kill`` event fires the
        exit is clean, otherwise the kill crashes it with whatever work is
        left on board.
        """
        state = self._fault_state(logical)
        if state is None or state not in self._active:
            return False, "replica not active"
        self._active.remove(state)
        state.draining = True
        self._draining.append(state)
        if self._active:
            self.router.resize(len(self._active))
            self._sync_router()
        self.resilience.num_preemptions += 1
        self._retire_drained(now)
        return True, "preemption notice: draining"

    def _fault_crash(self, logical: int | None, now: float, *,
                     allow_draining: bool = False) -> tuple[bool, str]:
        """Kill a replica: drop its caches, evacuate and re-route its work."""
        state = self._fault_state(logical)
        if state is not None and state in self._active:
            self._active.remove(state)
            was_active = True
        elif allow_draining and state is not None and state in self._draining:
            self._draining.remove(state)
            was_active = False
        else:
            return False, "replica not active"
        if self._events is not None:
            self._events.discard(state.key)
        state.crashed = True
        state.retired_at = now
        self._crashed.append(state)
        # Lost-KV accounting: the GPU radix tree and the node's host store die
        # with the machine.  Only blocks already resident in the fleet-shared
        # cluster store survive — crash ≠ drain, nothing is flushed.
        cache = state.instance.kv.stats()
        lost_kv = state.instance.kv.num_cached_tokens
        if cache.offload_stats is not None:
            lost_kv += cache.offload_stats["current_blocks"] * state.instance.spec.kv_block_size
        running_ids: set[int] = set()
        if self.policies is not None:
            running_ids = set(state.instance.running_request_ids())
        evacuated, in_flight, lost_work = state.instance.crash(now)
        self.resilience.num_crashes += 1
        self.resilience.lost_kv_tokens += lost_kv
        self.resilience.num_lost_in_flight += in_flight
        self.resilience.lost_work_tokens += lost_work
        self._crash_times[logical] = now
        if was_active and self._active:
            self.router.resize(len(self._active))
            self._sync_router()
        if self.policies is not None:
            if self.policies.breakers is not None:
                self.policies.breakers.discard(state.key)
            for request in evacuated:
                self._policy_on_evacuated(request, crashed_key=state.key,
                                          was_running=request.request_id in running_ids,
                                          now=now)
        else:
            for request in evacuated:
                self._resubmit(request, now)
        return True, (
            f"evacuated {len(evacuated)} request(s) "
            f"({in_flight} in flight), lost {lost_kv} cached token(s)"
        )

    def _fault_recover(self, logical: int | None, now: float) -> tuple[bool, str]:
        """Rebuild a crashed replica and warm-restore its hot prefixes."""
        state = self._fault_state(logical)
        if state is None or not state.crashed:
            return False, "replica not crashed"
        new_state = self._build_replica(state.spec, now=now)
        new_state.recovered = True
        state.crashed = False  # repaired; a later crash targets the new instance
        self._active.append(new_state)
        self._fault_targets[logical] = new_state.key
        self.router.resize(len(self._active))
        self._sync_router()
        self.stats.peak_replicas = max(self.stats.peak_replicas, len(self._active))
        self.resilience.num_recoveries += 1
        crash_time = self._crash_times.pop(logical, None)
        if crash_time is not None:
            self.resilience.mttr_samples.append(now - crash_time)
        restored = self._warm_restore(new_state)
        self.resilience.warm_restored_blocks += restored
        if restored:
            self.obs.emit(now, new_state.key, "warm_restore", blocks=restored)
        return True, (
            f"rebuilt as {new_state.instance.name!r}, "
            f"warm-restored {restored} block(s)"
        )

    def _fault_slow(self, logical: int | None, multiplier: float) -> tuple[bool, str]:
        # Draining replicas are still executing work, so a degradation window
        # applies (and, crucially, *ends*) on them too — a replica that starts
        # draining mid-window must not keep the multiplier forever.
        state = self._fault_state(logical)
        if state is None or state not in self._all_serving():
            return False, "replica not serving"
        state.instance.slowdown = multiplier
        return True, f"service-time multiplier {multiplier:g}"

    def _set_brownout(self, multiplier: float) -> None:
        self._brownout = multiplier
        if self.cluster_store is not None:
            self.cluster_store.cost_multiplier = multiplier
        for state in self._all_serving():
            state.instance.kv.set_transfer_cost_multiplier(multiplier)

    def _warm_restore(self, state: _ReplicaState) -> int:
        """Stage the cluster store's hottest blocks into a rebuilt replica's L2."""
        if self.cluster_store is None or self.warm_restore_blocks <= 0:
            return 0
        tiers = state.instance.kv.tiers
        if tiers is None:
            return 0
        resident = self.cluster_store.resident_hashes()  # LRU order, [] in outage
        hottest = resident[-self.warm_restore_blocks:]
        return tiers.warm_restore(hottest)

    def _record_unserved(self, request: Request, now: float, *,
                         arrival_time: float) -> None:
        self.resilience.num_unserved += 1
        self.stats.num_shed += 1
        self._shed.append(self._rejection_record(
            request, arrival_time=arrival_time, now=now,
            reason="no active replicas (fleet-wide crash)",
        ))
        self.obs.emit(now, GLOBAL_KEY, "shed", request=request.request_id,
                      reason="no active replicas (fleet-wide crash)")

    def _resubmit(self, request: Request, now: float) -> EngineInstance | None:
        """Re-route one evacuated request after its replica crashed.

        Mirrors :meth:`submit` — admission control and the router both get a
        say, so a retry storm can legitimately be shed — but does not count
        as new offered load (no arrival observation, no ``num_submitted``).
        The request re-enqueues (and any shed/unserved record is stamped)
        with its *original* arrival time, so its eventual latency honestly
        spans the crash it survived.
        """
        self.resilience.num_retried += 1
        self.retried_request_ids.append(request.request_id)
        self.obs.emit(now, GLOBAL_KEY, "retry", request=request.request_id)
        if not self._active:
            self._record_unserved(request, now, arrival_time=request.arrival_time)
            return None
        state = self._admit_and_route(request, now,
                                      arrival_time=request.arrival_time,
                                      shed_reason_prefix="retry shed: ")
        if state is None:
            if self.policies is not None:
                # The shed/unserved record is the request's terminal record.
                self._policy_abandon(request.request_id)
            return None
        return self._dispatch(request, state,
                              enqueue_time=request.arrival_time, now=now)

    # ------------------------------------------------------------- policies

    def _degraded(self) -> bool:
        """True while the degrade controller holds brownout tier >= 1."""
        return (self.policies is not None
                and self.policies.degrade is not None
                and self.policies.degrade.tier >= 1)

    def _policy_on_submit(self, now: float) -> None:
        """Per-arrival policy upkeep: breaker clock + degrade pressure sample."""
        policies = self.policies
        if policies.breakers is not None:
            policies.breakers.clock = now
        if policies.degrade is not None and self._active:
            pressure = sum(
                state.instance.num_waiting for state in self._active
            ) / len(self._active)
            policies.degrade.observe(pressure, now)

    def _policy_admit(self, request: Request, now: float, *,
                      arrival_time: float, shed_reason_prefix: str) -> bool:
        """Degrade-tier admission: shed low-priority tenants in tier 2."""
        degrade = self.policies.degrade
        if degrade is None or degrade.tier < 2:
            return True
        tenant = request.metadata.get("tenant")
        if tenant not in degrade.policy.low_priority_tenants:
            return True
        reason = (
            f"{shed_reason_prefix}degraded: low-priority tenant {tenant!r} shed"
        )
        self.resilience.num_degrade_sheds += 1
        self.stats.num_shed += 1
        self._shed.append(self._rejection_record(
            request, arrival_time=arrival_time, now=now, reason=reason,
        ))
        self.obs.emit(now, GLOBAL_KEY, "shed", request=request.request_id,
                      reason=reason)
        self._policy_abandon(request.request_id)
        return False

    def _policy_track(self, request: Request, state: _ReplicaState,
                      now: float) -> None:
        """Start (or re-point) the policy bookkeeping of a dispatched request."""
        policies = self.policies
        rid = request.request_id
        tracked = self._tracked.get(rid)
        if tracked is None:
            tracked = TrackedRequest(
                request=request,
                primary_key=state.key,
                primary_name=state.instance.name,
            )
            self._tracked[rid] = tracked
            if policies.deadline is not None:
                self._policy_events.update(
                    rid * 4 + _TIMER_DEADLINE,
                    request.arrival_time + policies.deadline.timeout_s,
                )
        else:
            tracked.primary_key = state.key
            tracked.primary_name = state.instance.name
            tracked.retry_pending = False
        if policies.hedge is not None and tracked.hedge_key is None:
            delay = policies.hedge_delay()
            if delay is not None:
                self._policy_events.update(rid * 4 + _TIMER_HEDGE, now + delay)

    def _policy_cancel_timers(self, rid: int) -> None:
        for slot in (_TIMER_DEADLINE, _TIMER_HEDGE, _TIMER_RETRY):
            self._policy_events.discard(rid * 4 + slot)

    def _policy_abandon(self, rid: int) -> None:
        """Drop a request's policy state (a terminal record exists elsewhere)."""
        self._policy_cancel_timers(rid)
        self._tracked.pop(rid, None)

    def _state_by_name(self, instance_name: str) -> _ReplicaState | None:
        for state in self._all_states():
            if state.instance.name == instance_name:
                return state
        return None

    def _policy_finish(self, record: FinishedRequest) -> bool:
        """Completion hook; False drops the record (a hedge-loser duplicate)."""
        tracked = self._tracked.get(record.request_id)
        if tracked is None:
            return True
        now = record.finish_time
        policies = self.policies
        if tracked.done:
            # The hedge loser completed in the same event batch as the
            # winner: too late to cancel, so unrecord it — one request, one
            # completion — and bill the duplicate's full work as waste.
            state = self._state_by_name(record.instance_name)
            if state is not None:
                state.instance.discard_finished(record.request_id)
            self.resilience.hedge_wasted_tokens += record.num_tokens
            self._tracked.pop(record.request_id, None)
            return False
        tracked.done = True
        self._policy_cancel_timers(record.request_id)
        winner_is_hedge = record.instance_name == tracked.hedge_name
        if winner_is_hedge:
            self.resilience.num_hedge_wins += 1
        loser_key = tracked.primary_key if winner_is_hedge else tracked.hedge_key
        loser_outstanding = False
        if loser_key is not None:
            loser_state = self._states_by_key.get(loser_key)
            cancelled = None
            if loser_state is not None:
                cancelled = loser_state.instance.cancel(record.request_id, now)
                if cancelled is not None:
                    if cancelled == "running":
                        # The duplicate burned real compute before losing.
                        self.resilience.hedge_wasted_tokens += record.num_tokens
                    # The freed stage can start queued work immediately;
                    # chained completions flow through the same hooks.
                    self._observe(loser_state.instance.advance_to(now))
                    self._refresh_event(loser_state)
            # cancel() returning None means the loser already completed —
            # its record is later in this very batch; keep `tracked` so the
            # done-branch above catches and discards it.
            loser_outstanding = cancelled is None
        if not loser_outstanding:
            self._tracked.pop(record.request_id, None)
        policies.record_latency(record.latency)
        if policies.breakers is not None:
            winner_key = (
                tracked.hedge_key if winner_is_hedge else tracked.primary_key
            )
            if winner_key is not None:
                policies.breakers.clock = now
                policies.breakers.on_success(winner_key, record.latency, now)
        return True

    def next_policy_time(self) -> float | None:
        """Earliest pending policy timer (deadline / hedge / retry), if any."""
        if self.policies is None:
            return None
        return self._policy_events.next_time()

    def apply_policy_timers(self, now: float) -> None:
        """Fire every policy timer due at or before ``now``, in time order."""
        if self.policies is None:
            return
        if self.policies.breakers is not None:
            self.policies.breakers.clock = now
        for key in self._policy_events.pop_due(now):
            self._policy_events.discard(key)
            rid, slot = key >> 2, key & 3
            if slot == _TIMER_DEADLINE:
                self._policy_deadline_fire(rid, now)
            elif slot == _TIMER_HEDGE:
                self._policy_hedge_fire(rid, now)
            else:
                self._policy_retry_fire(rid, now)

    def _policy_deadline_fire(self, rid: int, now: float) -> None:
        """Cancel every live copy of a request that exceeded its deadline."""
        tracked = self._tracked.get(rid)
        if tracked is None or tracked.done:
            return
        request = tracked.request
        cancelled_any = False
        for copy_key in (tracked.primary_key, tracked.hedge_key):
            if copy_key is None:
                continue
            state = self._states_by_key.get(copy_key)
            if state is None:
                continue
            where = state.instance.cancel(rid, now)
            if where is not None:
                cancelled_any = True
                self._observe(state.instance.advance_to(now))
                self._refresh_event(state)
        if tracked.retry_pending:
            # The request was waiting out a retry backoff: no live copy, but
            # the pending re-execution is what the deadline cancels.
            tracked.retry_pending = False
            cancelled_any = True
        if not cancelled_any:
            # Completed concurrently; the finish path owns the cleanup.
            return
        tracked.done = True
        self._policy_abandon(rid)
        self.resilience.num_deadline_missed += 1
        timeout = self.policies.deadline.timeout_s
        self._cancelled.append(self._rejection_record(
            request, arrival_time=request.arrival_time, now=now,
            reason=f"deadline missed after {timeout:g}s",
        ))
        self.obs.emit(now, GLOBAL_KEY, "deadline_miss", request=rid,
                      timeout_s=timeout)
        if self.policies.breakers is not None:
            self.policies.breakers.on_failure(tracked.primary_key, now)

    def _policy_hedge_fire(self, rid: int, now: float) -> None:
        """Duplicate a straggler onto the least-loaded other replica."""
        tracked = self._tracked.get(rid)
        if (tracked is None or tracked.done or tracked.retry_pending
                or tracked.hedge_key is not None):
            return
        if len(self._active) < 2:
            return
        primary = self._states_by_key.get(tracked.primary_key)
        if primary is None or not primary.instance.has_request(rid):
            return
        request = tracked.request
        candidates = [
            (state.instance.num_waiting, index)
            for index, state in enumerate(self._active)
            if state.key != tracked.primary_key
            and request.num_tokens <= state.instance.max_input_length
        ]
        if not candidates:
            return
        target = self._active[min(candidates)[1]]
        if not target.instance.submit(request, request.arrival_time):
            return
        tracked.hedge_key = target.key
        tracked.hedge_name = target.instance.name
        self.resilience.num_hedges += 1
        self.obs.emit(now, target.key, "hedge", request=rid,
                      replica=target.instance.name)
        self._observe(target.instance.advance_to(now))
        self._refresh_event(target)

    def _policy_retry_fire(self, rid: int, now: float) -> None:
        """Re-execute a crash-evacuated request after its backoff elapsed."""
        tracked = self._tracked.get(rid)
        if tracked is None or tracked.done or not tracked.retry_pending:
            return
        tracked.retry_pending = False
        tracked.attempts += 1
        if self._resubmit(tracked.request, now) is None:
            # Shed or unserved at re-route; that record is terminal.
            self._policy_abandon(rid)

    def _policy_on_evacuated(self, request: Request, *, crashed_key: int,
                             was_running: bool, now: float) -> None:
        """Policy-aware crash evacuation of one request.

        A surviving hedge copy absorbs the loss (nothing retries, and the
        lost-work accounting is rolled back — the request's compute is still
        in flight elsewhere, so hedging never inflates lost tokens);
        otherwise the retry policy schedules a backoff re-execution, bounded
        by per-request attempts and the per-tenant budget.
        """
        rid = request.request_id
        tracked = self._tracked.get(rid)
        policies = self.policies
        if tracked is not None and not tracked.done:
            if tracked.hedge_key == crashed_key:
                tracked.hedge_key = None
                tracked.hedge_name = None
                if was_running:
                    self.resilience.lost_work_tokens -= request.num_tokens
                    self.resilience.num_lost_in_flight -= 1
                return
            if tracked.primary_key == crashed_key and tracked.hedge_key is not None:
                tracked.primary_key = tracked.hedge_key
                tracked.primary_name = tracked.hedge_name
                tracked.hedge_key = None
                tracked.hedge_name = None
                if was_running:
                    self.resilience.lost_work_tokens -= request.num_tokens
                    self.resilience.num_lost_in_flight -= 1
                return
        if policies.retry is None:
            self._resubmit(request, now)
            return
        attempts = tracked.attempts if tracked is not None else 1
        tenant = request.metadata.get("tenant")
        if attempts >= policies.retry.max_attempts:
            self._policy_retry_exhausted(
                request, now,
                reason=f"retry attempts exhausted ({attempts} of "
                       f"{policies.retry.max_attempts})",
            )
            return
        if not policies.try_consume_retry_budget(tenant):
            self._policy_retry_exhausted(
                request, now,
                reason=(
                    f"tenant retry budget exhausted "
                    f"({policies.retry.budget_per_tenant} for {tenant!r})"
                ),
            )
            return
        if tracked is None:
            tracked = TrackedRequest(
                request=request, primary_key=crashed_key, primary_name="",
            )
            self._tracked[rid] = tracked
        tracked.retry_pending = True
        self._policy_events.discard(rid * 4 + _TIMER_HEDGE)
        delay = policies.retry_delay(rid, tracked.attempts)
        self._policy_events.update(rid * 4 + _TIMER_RETRY, now + delay)

    def _policy_retry_exhausted(self, request: Request, now: float, *,
                                reason: str) -> None:
        self.resilience.num_retry_exhausted += 1
        self._policy_abandon(request.request_id)
        self._cancelled.append(self._rejection_record(
            request, arrival_time=request.arrival_time, now=now, reason=reason,
        ))
        self.obs.emit(now, GLOBAL_KEY, "shed", request=request.request_id,
                      reason=reason)

    def _on_breaker_transition(self, key: int, old: str, new: str,
                               now: float) -> None:
        if new == "open":
            self.resilience.num_breaker_opens += 1
        elif new == "closed":
            self.resilience.num_breaker_closes += 1
        state = self._states_by_key.get(key)
        self.obs.emit(
            now, key, "breaker",
            replica=state.instance.name if state is not None else key,
            **{"from": old, "to": new},
        )

    def _on_degrade_transition(self, old: int, new: int, now: float) -> None:
        self.obs.emit(now, GLOBAL_KEY, "degrade", **{"from": old, "to": new})
        if self.cluster_store is not None:
            # Tier >= 1 pauses L3 publish traffic (demotions, drains); reads
            # stay up — serving beats cache durability in a brownout.
            self.cluster_store.set_publish_paused(new >= 1)

    def resilience_summary(self, summary):
        """Summarise fault/recovery accounting for the whole run.

        Args:
            summary: The run's :class:`~repro.simulation.metrics.LatencySummary`
                (supplies the makespan and completion count goodput is
                measured against).

        Returns a :class:`~repro.simulation.metrics.ResilienceSummary`.  The
        warm-restore hit rate is measured over the replicas fault recovery
        built: the fraction of their input tokens served from the host or
        cluster tiers instead of being recomputed cold.
        """
        from repro.simulation.metrics import summarize_resilience

        warm_hit_tokens = 0
        warm_total_tokens = 0
        for state in self._all_states():
            if not state.recovered:
                continue
            cache = state.instance.kv.stats()
            warm_total_tokens += cache.tokens_total
            if cache.tier_stats is not None:
                warm_hit_tokens += (
                    cache.tier_stats["tokens_hit_host"]
                    + cache.tier_stats["tokens_hit_cluster"]
                )
        if self.policies is not None and self.policies.degrade is not None:
            self.policies.degrade.finalize(summary.makespan)
            self.resilience.degraded_seconds = (
                self.policies.degrade.degraded_seconds
            )
        return summarize_resilience(
            self.resilience,
            fault_log=tuple(self.fault_log),
            num_submitted=self.stats.num_submitted,
            num_finished=summary.num_requests,
            makespan=summary.makespan,
            warm_hit_tokens=warm_hit_tokens,
            warm_total_tokens=warm_total_tokens,
            include_policy=self.policies is not None,
        )

    # -------------------------------------------------------------- results

    def finished_requests(self) -> list[FinishedRequest]:
        """Completion records across every replica the fleet ever ran."""
        records: list[FinishedRequest] = []
        for state in self._all_states():
            records.extend(state.instance.finished_requests)
        return records

    def rejected_requests(self) -> list[FinishedRequest]:
        """Engine rejections, admission sheds, and policy cancellations."""
        records: list[FinishedRequest] = []
        for state in self._all_states():
            records.extend(state.instance.rejected_requests)
        records.extend(self._shed)
        records.extend(self._cancelled)
        return records

    def shed_requests(self) -> list[FinishedRequest]:
        """Only the requests shed by admission control."""
        return list(self._shed)

    def cache_stats(self) -> list[dict]:
        """Per-replica prefix-cache statistics (including retired replicas)."""
        stats = []
        for state in self._all_states():
            cache = state.instance.kv.stats()
            entry = {
                "instance": state.instance.name,
                "requests": cache.requests,
                "request_hit_rate": round(cache.request_hit_rate, 3),
                "token_hit_rate": round(cache.token_hit_rate, 3),
            }
            if cache.tier_stats is not None:
                total = max(cache.tokens_total, 1)
                entry["host_hit_rate"] = round(
                    cache.tier_stats["tokens_hit_host"] / total, 3
                )
                entry["cluster_hit_rate"] = round(
                    cache.tier_stats["tokens_hit_cluster"] / total, 3
                )
            stats.append(entry)
        return stats

    def tier_summary(self):
        """Aggregate per-tier hit / transfer accounting for the whole run.

        Returns a :class:`~repro.simulation.metrics.TierSummary`, or None when
        the fleet runs without tiering.
        """
        if self.tier_config is None:
            return None
        from repro.simulation.metrics import summarize_tiers

        cache_stats = [
            state.instance.kv.stats()
            for state in self._all_states()
        ]
        cluster_stats = (
            self.cluster_store.stats if self.cluster_store is not None else None
        )
        return summarize_tiers(cache_stats, cluster_stats)

    def replica_reports(self, end_time: float) -> list[dict]:
        """Per-replica utilisation / hit-rate rows for fleet summaries.

        Args:
            end_time: Simulated time the run ended (upper bound of every
                replica's active window).
        """
        reports: list[dict] = []
        for state in self._all_states():
            until = state.retired_at if state.retired_at is not None else end_time
            active_seconds = max(until - state.created_at, 0.0)
            cache = state.instance.kv.stats()
            report = {
                "replica": state.instance.name,
                "finished": len(state.instance.finished_requests),
                "busy_s": round(state.instance.busy_time, 3),
                "active_s": round(active_seconds, 3),
                "utilization": (
                    min(state.instance.busy_time / active_seconds, 1.0)
                    if active_seconds > 0 else 0.0
                ),
                "request_hit_rate": cache.request_hit_rate,
                "token_hit_rate": cache.token_hit_rate,
                "retired": state.retired_at is not None,
            }
            if cache.offload_stats is not None:
                report["offload_stored"] = cache.offload_stats["stored_blocks"]
                report["offload_loaded"] = cache.offload_stats["loaded_blocks"]
                report["offload_evicted"] = cache.offload_stats["evicted_blocks"]
            reports.append(report)
        return reports
