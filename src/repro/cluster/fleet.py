"""A fleet of engine replicas behind one entry point.

:class:`Fleet` generalises :class:`~repro.simulation.server.ServingSystem`
from "one homogeneous engine layout derived from a cluster spec" to a
production-shaped serving tier:

* N replicas, each a full :class:`~repro.core.engine.EngineInstance`, built
  from per-replica :class:`ReplicaSpec` records so GPU types and engine
  flavours may differ across the fleet;
* a pluggable :class:`~repro.simulation.routing.Router` (user-id by default,
  matching the paper's deployment rule) that is kept in sync with the replica
  set as it changes;
* optional queue-depth :class:`~repro.cluster.admission.AdmissionPolicy` load
  shedding in front of the router;
* an optional :class:`~repro.cluster.autoscaler.Autoscaler` that adds replicas
  cloned from a template spec and drains the highest-indexed replica on
  scale-down (drained replicas stop receiving traffic, finish their queue,
  and retire with their completion records preserved).

Replica clocks are advanced lazily: an event at simulated time *t* only
advances replicas whose next internal event is due at or before *t*, so a
mostly idle fleet costs almost nothing per event regardless of its size.  By
default the fleet finds those due replicas with a heap-based
:class:`~repro.simulation.events.EventQueue` (one live entry per serving
replica, refreshed whenever a replica is submitted to, advanced, or scaled)
instead of scanning every replica per event; construct with
``use_event_queue=False`` to get the original linear scans — the results are
identical, and the flag exists for the before/after benchmark.  The driving
loop lives in :func:`repro.simulation.simulator.simulate_fleet`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import EngineInstance, EngineSpec, FinishedRequest, kv_block_bytes
from repro.errors import ConfigurationError, SimulationError
from repro.faults import DEFAULT_WARM_RESTORE_BLOCKS, FaultEvent, ResilienceCounters
from repro.hardware.cluster import HardwareSetup
from repro.hardware.gpu import GPUSpec
from repro.hardware.interconnect import Interconnect
from repro.kvcache.manager import CommitPolicy
from repro.kvcache.tiers import ClusterPrefixStore, TierConfig, build_cluster_store
from repro.model.config import ModelConfig, get_model
from repro.obs.recorder import GLOBAL_KEY, NULL_RECORDER
from repro.simulation.events import EventQueue
from repro.simulation.routing import Router, UserIdRouter
from repro.cluster.admission import AdmissionPolicy
from repro.cluster.autoscaler import Autoscaler, ScaleEvent
from repro.workloads.trace import Request


@dataclass(frozen=True)
class ReplicaSpec:
    """Everything needed to stand up one replica of the fleet.

    Attributes:
        engine: Engine flavour the replica runs.
        gpu: GPU type of each shard of the replica.
        interconnect: Shard-to-shard link (required when the engine spec uses
            more than one GPU per instance).
    """

    engine: EngineSpec
    gpu: GPUSpec
    interconnect: Interconnect | None = None


@dataclass
class _ReplicaState:
    """Bookkeeping the fleet keeps per replica (live, draining, retired, or crashed)."""

    instance: EngineInstance
    created_at: float
    spec: ReplicaSpec | None = None
    key: int = 0
    retired_at: float | None = None
    draining: bool = False
    #: Killed by a fault (crash ≠ drain: nothing finished, nothing flushed).
    crashed: bool = False
    #: Built by fault recovery — the replicas whose tier hits measure the
    #: warm-restore hit rate.
    recovered: bool = False


@dataclass
class FleetStats:
    """Counters the fleet accumulates while serving."""

    num_submitted: int = 0
    num_routed: int = 0
    num_shed: int = 0
    num_scale_ups: int = 0
    num_scale_downs: int = 0
    peak_replicas: int = 0


class Fleet:
    """N engine replicas behind a router, admission control, and an autoscaler.

    Args:
        replica_specs: One :class:`ReplicaSpec` per initial replica (at least
            one).  The first entry doubles as the template the autoscaler
            clones when growing the fleet.
        model: Model served by every replica.
        max_input_length: MIL each replica is provisioned for.
        router: Routing policy; defaults to the paper's user-id router.
        admission: Optional load-shedding policy consulted before routing.
        autoscaler: Optional reactive autoscaler.
        name: Fleet name used in reports.
        use_event_queue: Track per-replica next-event times in a heap (default)
            instead of scanning every replica per event.  Results are
            identical; ``False`` restores the original scans for comparison.
        engine_fast_paths: Build replicas with the engine-level fast paths
            (heap-based prefix-cache eviction, incremental JCT-calibration
            lookups).  Results are identical; the flag exists for the
            old-vs-new event-loop benchmark.
        tier_config: Optional tiered prefix-cache configuration
            (:class:`~repro.kvcache.tiers.TierConfig`).  When enabled the
            fleet builds one shared cluster (L3) store, wires every replica —
            including autoscaled clones — into it, warms the routed replica
            before dispatch (router-hint prefetch), and drains retiring
            replicas' hot prefixes into the shared store on scale-down.
        cluster_service: Optional wrapper applied to the freshly built L3
            store before any replica binds a reference to it — how sharded
            runs interpose the versioned, latency-stamped
            :class:`~repro.kvcache.tiers.ShardStoreBus` message facade.  Must
            be transparent (pure delegation) so results stay byte-identical.
        recorder: Optional :class:`~repro.obs.recorder.TraceRecorder` the
            fleet, its replicas, and their tier stores report span events to;
            None installs the no-op null recorder (the default, behaviour
            identical to a build without the subsystem).
    """

    def __init__(self, replica_specs: list[ReplicaSpec], model: ModelConfig, *,
                 max_input_length: int,
                 router: Router | None = None,
                 admission: AdmissionPolicy | None = None,
                 autoscaler: Autoscaler | None = None,
                 name: str = "fleet",
                 use_event_queue: bool = True,
                 engine_fast_paths: bool = True,
                 tier_config: TierConfig | None = None,
                 cluster_service=None,
                 recorder=None) -> None:
        if not replica_specs:
            raise ConfigurationError("a fleet needs at least one replica spec")
        self.name = name
        #: The observability recorder every hook site reports to; the shared
        #: no-op :data:`~repro.obs.recorder.NULL_RECORDER` unless the run is
        #: traced (see ``docs/OBSERVABILITY.md``).
        self.obs = recorder if recorder is not None else NULL_RECORDER
        self.model = model
        self.max_input_length = max_input_length
        self.template = replica_specs[0]
        self.admission = admission
        self.autoscaler = autoscaler
        self._engine_fast_paths = engine_fast_paths
        self.tier_config = tier_config if tier_config is not None and tier_config.enabled else None
        self.cluster_store: ClusterPrefixStore | None = None
        if self.tier_config is not None:
            block_sizes = {spec.engine.kv_block_size for spec in replica_specs}
            block_bytes = {kv_block_bytes(spec.engine, model) for spec in replica_specs}
            if len(block_sizes) > 1 or len(block_bytes) > 1:
                raise ConfigurationError(
                    "tiering requires a fleet-wide KV block geometry (the shared "
                    "cluster store keys and sizes blocks by content hash); got "
                    f"block sizes {sorted(block_sizes)} and "
                    f"block bytes {sorted(block_bytes)}"
                )
            self.cluster_store = build_cluster_store(
                self.tier_config, block_bytes=kv_block_bytes(self.template.engine, model)
            )
            if self.cluster_store is not None and cluster_service is not None:
                # Wrap the L3 store in a cross-shard service facade (e.g.
                # repro.kvcache.tiers.ShardStoreBus) *before* replicas bind
                # their references, so every tier operation flows through it.
                self.cluster_store = cluster_service(self.cluster_store)
        self.stats = FleetStats()
        #: Replicas advanced by the most recent :meth:`advance_to` call —
        #: identical on the heap and scan paths, so the driving loop can count
        #: processed events consistently (see
        #: :class:`repro.simulation.simulator.FleetSimulationResult`).
        self.last_advance_count = 0
        self.scale_events: list[ScaleEvent] = []
        #: Fault/recovery counters (all zero until a fault is injected); see
        #: :class:`repro.faults.ResilienceCounters`.
        self.resilience = ResilienceCounters()
        #: One dict row per delivered fault event, in delivery order.
        self.fault_log: list[dict] = []
        #: Request ids re-routed after a crash (per-tenant retry accounting).
        self.retried_request_ids: list[int] = []
        #: L3 -> L2 restore budget (blocks) applied on fault recovery; the
        #: simulator overrides it from the schedule's ``warm_restore_blocks``.
        self.warm_restore_blocks = DEFAULT_WARM_RESTORE_BLOCKS
        self._brownout = 1.0
        self._shed: list[FinishedRequest] = []
        self._replica_seq = 0
        self._events: EventQueue | None = EventQueue() if use_event_queue else None
        self._states_by_key: dict[int, _ReplicaState] = {}
        self._active: list[_ReplicaState] = [
            self._build_replica(spec, now=0.0) for spec in replica_specs
        ]
        self._draining: list[_ReplicaState] = []
        self._retired: list[_ReplicaState] = []
        self._crashed: list[_ReplicaState] = []
        #: Logical fault-target id -> current replica key.  Fault events
        #: address replicas by the *logical* slot (initially the build index),
        #: so a crash/recover/crash cycle keeps targeting the same slot even
        #: though recovery builds a fresh instance under a new key.
        self._fault_targets: dict[int, int] = {
            index: index for index in range(len(self._active))
        }
        self._crash_times: dict[int, float] = {}
        self.router: Router = (
            router if router is not None else UserIdRouter(len(self._active))
        )
        self.router.resize(len(self._active))
        self._sync_router()
        self.stats.peak_replicas = len(self._active)

    # ----------------------------------------------------------- construction

    @classmethod
    def homogeneous(cls, engine: EngineSpec, model: ModelConfig, gpu: GPUSpec, *,
                    num_replicas: int, max_input_length: int,
                    interconnect: Interconnect | None = None,
                    **kwargs) -> "Fleet":
        """Build a fleet of ``num_replicas`` identical replicas."""
        if num_replicas < 1:
            raise ConfigurationError("num_replicas must be at least 1")
        spec = ReplicaSpec(engine=engine, gpu=gpu, interconnect=interconnect)
        return cls([spec] * num_replicas, model,
                   max_input_length=max_input_length, **kwargs)

    @classmethod
    def for_setup(cls, engine: EngineSpec, setup: HardwareSetup, *,
                  max_input_length: int, num_replicas: int | None = None,
                  **kwargs) -> "Fleet":
        """Build a fleet on one of the paper's hardware setups.

        ``num_replicas`` defaults to the paper's deployment rule: one replica
        per ``engine.gpus_per_instance`` GPUs of the setup's cluster.
        """
        if num_replicas is None:
            num_replicas = max(setup.cluster.num_gpus // engine.gpus_per_instance, 1)
        return cls.homogeneous(
            engine, get_model(setup.model_name), setup.cluster.gpu,
            num_replicas=num_replicas,
            max_input_length=max_input_length,
            interconnect=setup.cluster.interconnect,
            **kwargs,
        )

    def _build_replica(self, spec: ReplicaSpec, *, now: float) -> _ReplicaState:
        index = self._replica_seq
        self._replica_seq += 1
        instance = EngineInstance(
            spec.engine, self.model, spec.gpu,
            interconnect=spec.interconnect,
            max_input_length=self.max_input_length,
            name=f"{spec.engine.name}-{index}",
            fast_paths=self._engine_fast_paths,
            tier_config=self.tier_config,
            cluster_store=self.cluster_store,
        )
        instance.obs = self.obs
        instance.obs_key = index
        self.obs.register_replica(index, instance.name)
        if instance.kv.tiers is not None:
            instance.kv.tiers.obs = self.obs
            instance.kv.tiers.obs_key = index
        state = _ReplicaState(instance=instance, created_at=now, spec=spec, key=index)
        if self._brownout != 1.0:
            # A replica built mid-brownout (autoscale or fault recovery)
            # suffers the degraded interconnect like everyone else.
            instance.kv.set_transfer_cost_multiplier(self._brownout)
        self._states_by_key[index] = state
        self._refresh_event(state)
        return state

    def _refresh_event(self, state: _ReplicaState) -> None:
        """Record the replica's current next-event time in the event queue."""
        if self._events is not None:
            self._events.update(state.key, state.instance.next_event_time())

    # ---------------------------------------------------------------- state

    @property
    def num_replicas(self) -> int:
        """Number of replicas currently receiving traffic."""
        return len(self._active)

    @property
    def replicas(self) -> list[EngineInstance]:
        """The routable engine instances, in router index order."""
        return [state.instance for state in self._active]

    @property
    def num_shed(self) -> int:
        """Requests rejected by admission control so far."""
        return len(self._shed)

    def queue_depths(self) -> list[int]:
        """Waiting-queue depth of every routable replica."""
        return [state.instance.num_waiting for state in self._active]

    def obs_gauge_rows(self) -> list[tuple]:
        """Per-replica gauge rows for the metrics recorder's sample boundaries."""
        return [
            (
                "queue_depth",
                (("replica", state.instance.name),),
                state.instance.num_waiting,
            )
            for state in self._active
        ]

    def is_idle(self) -> bool:
        """True when no replica (routable or draining) has work left."""
        return all(
            state.instance.is_idle() for state in self._active + self._draining
        )

    @property
    def engine_fast_paths(self) -> bool:
        """Whether replicas are built with the engine-level fast paths."""
        return self._engine_fast_paths

    def shard_manifest(self) -> list[tuple[int, str, ReplicaSpec | None]]:
        """``(key, instance name, spec)`` per routable replica, in router order.

        The picklable description :mod:`repro.simulation.sharded` partitions
        across shards — everything a worker process needs (together with the
        fleet's model and MIL) to rebuild a replica byte-identically.
        """
        return [
            (state.key, state.instance.name, state.spec)
            for state in self._active
        ]

    def shard_events(self, queue) -> None:
        """Swap event discovery onto a sharded queue with the same interface.

        ``queue`` (a :class:`~repro.simulation.sharded.ShardedEventQueue`)
        must reproduce the single-queue drain order; every live next-event
        time is re-registered so the swap is seamless mid-run.  All later
        ``update`` / ``discard`` calls — including fault deliveries for a
        replica — land in the shard that owns the replica's key.
        """
        if self._events is None:
            raise ConfigurationError(
                "sharded event discovery requires the event-queue fleet path "
                "(use_event_queue=True)"
            )
        for state in self._all_serving():
            queue.update(state.key, state.instance.next_event_time())
        self._events = queue

    def _all_serving(self) -> list[_ReplicaState]:
        return self._active + self._draining

    def _all_states(self) -> list[_ReplicaState]:
        """Every replica the fleet ever ran, for results collection.

        Serving first, then retired, then crashed — with no faults the
        crashed list is empty and the order is exactly the seed's.
        """
        return self._all_serving() + self._retired + self._crashed

    def _sync_router(self) -> None:
        self.router.observe_instances(self.replicas)

    # --------------------------------------------------------------- serving

    def submit(self, request: Request, now: float) -> EngineInstance | None:
        """Admit, route, and submit one request.

        Returns the replica the request landed on, or ``None`` when admission
        control shed it (a rejection record is kept either way).  A request
        arriving while every replica is crashed is unserved: it is recorded
        as shed (the resilience summary counts it separately) — production
        has nowhere to park a request when the whole fleet is down.
        """
        self.stats.num_submitted += 1
        self.obs.emit(now, GLOBAL_KEY, "submit", request=request.request_id)
        if self.autoscaler is not None:
            self.autoscaler.observe_arrival(now)
        if not self._active:
            self._record_unserved(request, now, arrival_time=now)
            return None
        state = self._admit_and_route(request, now, arrival_time=now,
                                      shed_reason_prefix="")
        if state is None:
            return None
        return self._dispatch(request, state, enqueue_time=now, now=now)

    def _admit_and_route(self, request: Request, now: float, *,
                         arrival_time: float,
                         shed_reason_prefix: str) -> _ReplicaState | None:
        """Admission + routing shared by :meth:`submit` and :meth:`_resubmit`.

        Returns the target replica, or None when admission shed the request
        (the rejection record is kept, stamped with ``arrival_time``).
        """
        if self.admission is not None or self.router.needs_queue_depths:
            depths = self.queue_depths()
        else:
            depths = []
        if self.admission is not None:
            decision = self.admission.admit(request, depths, now)
            if not decision.admitted:
                self.stats.num_shed += 1
                self._shed.append(self._rejection_record(
                    request, arrival_time=arrival_time, now=now,
                    reason=f"{shed_reason_prefix}{decision.reason}",
                ))
                self.obs.emit(
                    now, GLOBAL_KEY, "shed", request=request.request_id,
                    reason=f"{shed_reason_prefix}{decision.reason}",
                )
                return None
        state = self._active[self.router.route(request, depths)]
        self.obs.emit(now, state.key, "route", request=request.request_id,
                      replica=state.instance.name)
        return state

    def _dispatch(self, request: Request, state: _ReplicaState, *,
                  enqueue_time: float, now: float) -> EngineInstance:
        """Hand a routed request to its replica and advance that replica."""
        if self.tier_config is not None and self.tier_config.prefetch:
            # Router-hint prefetch: the routing decision is the hint that the
            # target replica is about to need this prefix — warm its L1 with
            # whatever continuation sits in the host/cluster tiers while the
            # request is still queueing.
            state.instance.kv.prefetch_tiers(
                request.block_hashes(state.instance.spec.kv_block_size), now=now
            )
        state.instance.submit(request, enqueue_time)
        self.stats.num_routed += 1
        self._observe(state.instance.advance_to(now))
        self._refresh_event(state)
        return state.instance

    def _rejection_record(self, request: Request, *, arrival_time: float,
                          now: float, reason: str) -> FinishedRequest:
        """Build the fleet-level rejection record for a shed request."""
        return FinishedRequest(
            request_id=request.request_id,
            user_id=request.user_id,
            num_tokens=request.num_tokens,
            cached_tokens=0,
            arrival_time=arrival_time,
            start_time=now,
            finish_time=now,
            instance_name=self.name,
            engine_name=self.name,
            rejected=True,
            rejection_reason=reason,
        )

    def next_event_time(self) -> float | None:
        """Earliest internal event across routable and draining replicas."""
        if self._events is not None:
            return self._events.next_time()
        times = [
            t for t in (
                state.instance.next_event_time() for state in self._all_serving()
            )
            if t is not None
        ]
        return min(times) if times else None

    def advance_to(self, now: float) -> list[FinishedRequest]:
        """Advance replicas whose next event is due at or before ``now``.

        Lazily skips replicas with no due event (their state cannot change
        before their own next event fires), retires draining replicas that
        have emptied, and returns the requests that finished on the way.
        """
        finished: list[FinishedRequest] = []
        advanced = 0
        if self._events is not None:
            due = self._events.pop_due(now)
            advanced = len(due)
            if len(due) == 1:
                state = self._states_by_key[due[0]]
                finished.extend(state.instance.advance_to(now))
                self._refresh_event(state)
            elif due:
                # Advance in serving order (actives, then draining) so the
                # autoscaler observes completions in the same order the
                # linear-scan path produced.
                due_keys = set(due)
                for state in self._all_serving():
                    if state.key in due_keys:
                        finished.extend(state.instance.advance_to(now))
                        self._refresh_event(state)
        else:
            for state in self._all_serving():
                next_time = state.instance.next_event_time()
                if next_time is None or next_time > now:
                    continue
                finished.extend(state.instance.advance_to(now))
                advanced += 1
        self.last_advance_count = advanced
        self._observe(finished)
        self._retire_drained(now)
        return finished

    def _observe(self, finished: list[FinishedRequest]) -> None:
        if self.autoscaler is not None:
            for record in finished:
                self.autoscaler.observe_completion(record)

    # ------------------------------------------------------------ autoscaling

    def maybe_autoscale(self, now: float) -> ScaleEvent | None:
        """Ask the autoscaler for a vote and apply it; return the event, if any."""
        if self.autoscaler is None:
            return None
        vote = self.autoscaler.decide(now, len(self._active), self.queue_depths())
        if vote > 0:
            return self.scale_up(now, reason=self.autoscaler.last_reason)
        if vote < 0 and len(self._active) > 1:
            return self.scale_down(now, reason=self.autoscaler.last_reason)
        return None

    def scale_up(self, now: float, *, reason: str = "manual") -> ScaleEvent:
        """Add one replica cloned from the template spec."""
        state = self._build_replica(self.template, now=now)
        self._active.append(state)
        self.router.resize(len(self._active))
        self._sync_router()
        self.stats.num_scale_ups += 1
        self.stats.peak_replicas = max(self.stats.peak_replicas, len(self._active))
        event = ScaleEvent(time=now, direction="up",
                           num_replicas=len(self._active), reason=reason)
        self.scale_events.append(event)
        self.obs.emit(now, GLOBAL_KEY, "scale", direction="up",
                      replicas=len(self._active), reason=reason)
        return event

    def scale_down(self, now: float, *, reason: str = "manual") -> ScaleEvent:
        """Drain the highest-indexed replica (it keeps running until empty)."""
        if len(self._active) <= 1:
            raise ConfigurationError("cannot scale below one replica")
        state = self._active.pop()
        state.draining = True
        self._draining.append(state)
        self.router.resize(len(self._active))
        self._sync_router()
        self.stats.num_scale_downs += 1
        event = ScaleEvent(time=now, direction="down",
                           num_replicas=len(self._active), reason=reason)
        self.scale_events.append(event)
        self.obs.emit(now, GLOBAL_KEY, "scale", direction="down",
                      replicas=len(self._active), reason=reason)
        self._retire_drained(now)
        return event

    def _retire_drained(self, now: float) -> None:
        if not self._draining:
            return
        still_draining: list[_ReplicaState] = []
        for state in self._draining:
            if state.instance.is_idle():
                state.retired_at = now
                self._flush_retiring(state)
                self._retired.append(state)
                if self._events is not None:
                    self._events.discard(state.key)
            else:
                still_draining.append(state)
        self._draining = still_draining

    def _flush_retiring(self, state: _ReplicaState) -> None:
        """Flush a retiring replica's cached prefixes through its commit policy.

        A replica only retires once idle, so no execution lease can be
        outstanding (``KVCacheManager.drain`` enforces it).  With tiering the
        radix tree and host tier publish into the fleet-shared cluster store,
        where surviving replicas can fetch the prefixes instead of recomputing
        them; engines whose commit policy does not cache (``NONE``) flush
        nothing.
        """
        if state.instance.spec.commit_policy is CommitPolicy.NONE:
            return
        state.instance.kv.drain()

    # --------------------------------------------------------------- faults

    def apply_fault(self, event: FaultEvent, now: float) -> bool:
        """Deliver one :class:`~repro.faults.FaultEvent` to the fleet.

        Called by :func:`repro.simulation.simulator.simulate_fleet` when the
        schedule's next event wins the event merge.  Events whose target
        cannot be acted on (an already-crashed replica, an L3 outage without
        a cluster store) are skipped, not errors — a chaos schedule is
        generated against a nominal fleet and the real one may have drifted.
        Every delivery is appended to :attr:`fault_log`; returns whether the
        event was applied.
        """
        kind = event.kind
        if kind == "crash":
            applied, detail = self._fault_crash(event.replica, now)
        elif kind == "recover":
            applied, detail = self._fault_recover(event.replica, now)
        elif kind in ("slow", "slow-end"):
            applied, detail = self._fault_slow(
                event.replica, event.multiplier if kind == "slow" else 1.0
            )
            if applied and kind == "slow":
                self.resilience.num_slow_events += 1
        elif kind in ("brownout", "brownout-end"):
            self._set_brownout(event.multiplier if kind == "brownout" else 1.0)
            applied, detail = True, f"transfer-cost multiplier {self._brownout:g}"
            if kind == "brownout":
                self.resilience.num_brownouts += 1
        elif kind in ("outage", "outage-end"):
            if self.cluster_store is None:
                applied, detail = False, "fleet has no cluster store"
            else:
                self.cluster_store.set_available(kind == "outage-end")
                applied, detail = True, (
                    "cluster store unreachable" if kind == "outage"
                    else "cluster store restored"
                )
                if kind == "outage":
                    self.resilience.num_outages += 1
        else:
            raise SimulationError(f"unknown fault event kind {kind!r}")
        if applied:
            self.resilience.num_faults_applied += 1
        else:
            self.resilience.num_faults_skipped += 1
        self.obs.emit(
            now, GLOBAL_KEY, "fault", fault=kind,
            replica=event.replica if event.replica is not None else "-",
            applied=applied, detail=detail,
        )
        self.fault_log.append({
            "time_s": round(now, 3),
            "kind": kind,
            "replica": event.replica if event.replica is not None else "-",
            "applied": applied,
            "detail": detail,
        })
        return applied

    def _fault_state(self, logical: int | None) -> _ReplicaState | None:
        """Resolve a logical fault target to its current replica state."""
        if logical is None:
            return None
        key = self._fault_targets.get(logical, logical)
        return self._states_by_key.get(key)

    def _fault_crash(self, logical: int | None, now: float) -> tuple[bool, str]:
        """Kill a replica: drop its caches, evacuate and re-route its work."""
        state = self._fault_state(logical)
        if state is None or state not in self._active:
            return False, "replica not active"
        self._active.remove(state)
        if self._events is not None:
            self._events.discard(state.key)
        state.crashed = True
        state.retired_at = now
        self._crashed.append(state)
        # Lost-KV accounting: the GPU radix tree and the node's host store die
        # with the machine.  Only blocks already resident in the fleet-shared
        # cluster store survive — crash ≠ drain, nothing is flushed.
        cache = state.instance.kv.stats()
        lost_kv = state.instance.kv.num_cached_tokens
        if cache.offload_stats is not None:
            lost_kv += cache.offload_stats["current_blocks"] * state.instance.spec.kv_block_size
        evacuated, in_flight, lost_work = state.instance.crash(now)
        self.resilience.num_crashes += 1
        self.resilience.lost_kv_tokens += lost_kv
        self.resilience.num_lost_in_flight += in_flight
        self.resilience.lost_work_tokens += lost_work
        self._crash_times[logical] = now
        if self._active:
            self.router.resize(len(self._active))
            self._sync_router()
        for request in evacuated:
            self._resubmit(request, now)
        return True, (
            f"evacuated {len(evacuated)} request(s) "
            f"({in_flight} in flight), lost {lost_kv} cached token(s)"
        )

    def _fault_recover(self, logical: int | None, now: float) -> tuple[bool, str]:
        """Rebuild a crashed replica and warm-restore its hot prefixes."""
        state = self._fault_state(logical)
        if state is None or not state.crashed:
            return False, "replica not crashed"
        new_state = self._build_replica(state.spec, now=now)
        new_state.recovered = True
        state.crashed = False  # repaired; a later crash targets the new instance
        self._active.append(new_state)
        self._fault_targets[logical] = new_state.key
        self.router.resize(len(self._active))
        self._sync_router()
        self.stats.peak_replicas = max(self.stats.peak_replicas, len(self._active))
        self.resilience.num_recoveries += 1
        crash_time = self._crash_times.pop(logical, None)
        if crash_time is not None:
            self.resilience.mttr_samples.append(now - crash_time)
        restored = self._warm_restore(new_state)
        self.resilience.warm_restored_blocks += restored
        if restored:
            self.obs.emit(now, new_state.key, "warm_restore", blocks=restored)
        return True, (
            f"rebuilt as {new_state.instance.name!r}, "
            f"warm-restored {restored} block(s)"
        )

    def _fault_slow(self, logical: int | None, multiplier: float) -> tuple[bool, str]:
        # Draining replicas are still executing work, so a degradation window
        # applies (and, crucially, *ends*) on them too — a replica that starts
        # draining mid-window must not keep the multiplier forever.
        state = self._fault_state(logical)
        if state is None or state not in self._all_serving():
            return False, "replica not serving"
        state.instance.slowdown = multiplier
        return True, f"service-time multiplier {multiplier:g}"

    def _set_brownout(self, multiplier: float) -> None:
        self._brownout = multiplier
        if self.cluster_store is not None:
            self.cluster_store.cost_multiplier = multiplier
        for state in self._all_serving():
            state.instance.kv.set_transfer_cost_multiplier(multiplier)

    def _warm_restore(self, state: _ReplicaState) -> int:
        """Stage the cluster store's hottest blocks into a rebuilt replica's L2."""
        if self.cluster_store is None or self.warm_restore_blocks <= 0:
            return 0
        tiers = state.instance.kv.tiers
        if tiers is None:
            return 0
        resident = self.cluster_store.resident_hashes()  # LRU order, [] in outage
        hottest = resident[-self.warm_restore_blocks:]
        return tiers.warm_restore(hottest)

    def _record_unserved(self, request: Request, now: float, *,
                         arrival_time: float) -> None:
        self.resilience.num_unserved += 1
        self.stats.num_shed += 1
        self._shed.append(self._rejection_record(
            request, arrival_time=arrival_time, now=now,
            reason="no active replicas (fleet-wide crash)",
        ))
        self.obs.emit(now, GLOBAL_KEY, "shed", request=request.request_id,
                      reason="no active replicas (fleet-wide crash)")

    def _resubmit(self, request: Request, now: float) -> EngineInstance | None:
        """Re-route one evacuated request after its replica crashed.

        Mirrors :meth:`submit` — admission control and the router both get a
        say, so a retry storm can legitimately be shed — but does not count
        as new offered load (no arrival observation, no ``num_submitted``).
        The request re-enqueues (and any shed/unserved record is stamped)
        with its *original* arrival time, so its eventual latency honestly
        spans the crash it survived.
        """
        self.resilience.num_retried += 1
        self.retried_request_ids.append(request.request_id)
        self.obs.emit(now, GLOBAL_KEY, "retry", request=request.request_id)
        if not self._active:
            self._record_unserved(request, now, arrival_time=request.arrival_time)
            return None
        state = self._admit_and_route(request, now,
                                      arrival_time=request.arrival_time,
                                      shed_reason_prefix="retry shed: ")
        if state is None:
            return None
        return self._dispatch(request, state,
                              enqueue_time=request.arrival_time, now=now)

    def resilience_summary(self, summary):
        """Summarise fault/recovery accounting for the whole run.

        Args:
            summary: The run's :class:`~repro.simulation.metrics.LatencySummary`
                (supplies the makespan and completion count goodput is
                measured against).

        Returns a :class:`~repro.simulation.metrics.ResilienceSummary`.  The
        warm-restore hit rate is measured over the replicas fault recovery
        built: the fraction of their input tokens served from the host or
        cluster tiers instead of being recomputed cold.
        """
        from repro.simulation.metrics import summarize_resilience

        warm_hit_tokens = 0
        warm_total_tokens = 0
        for state in self._all_states():
            if not state.recovered:
                continue
            cache = state.instance.kv.stats()
            warm_total_tokens += cache.tokens_total
            if cache.tier_stats is not None:
                warm_hit_tokens += (
                    cache.tier_stats["tokens_hit_host"]
                    + cache.tier_stats["tokens_hit_cluster"]
                )
        return summarize_resilience(
            self.resilience,
            fault_log=tuple(self.fault_log),
            num_submitted=self.stats.num_submitted,
            num_finished=summary.num_requests,
            makespan=summary.makespan,
            warm_hit_tokens=warm_hit_tokens,
            warm_total_tokens=warm_total_tokens,
        )

    # -------------------------------------------------------------- results

    def finished_requests(self) -> list[FinishedRequest]:
        """Completion records across every replica the fleet ever ran."""
        records: list[FinishedRequest] = []
        for state in self._all_states():
            records.extend(state.instance.finished_requests)
        return records

    def rejected_requests(self) -> list[FinishedRequest]:
        """Engine-level rejections plus admission-control sheds."""
        records: list[FinishedRequest] = []
        for state in self._all_states():
            records.extend(state.instance.rejected_requests)
        records.extend(self._shed)
        return records

    def shed_requests(self) -> list[FinishedRequest]:
        """Only the requests shed by admission control."""
        return list(self._shed)

    def cache_stats(self) -> list[dict]:
        """Per-replica prefix-cache statistics (including retired replicas)."""
        stats = []
        for state in self._all_states():
            cache = state.instance.kv.stats()
            entry = {
                "instance": state.instance.name,
                "requests": cache.requests,
                "request_hit_rate": round(cache.request_hit_rate, 3),
                "token_hit_rate": round(cache.token_hit_rate, 3),
            }
            if cache.tier_stats is not None:
                total = max(cache.tokens_total, 1)
                entry["host_hit_rate"] = round(
                    cache.tier_stats["tokens_hit_host"] / total, 3
                )
                entry["cluster_hit_rate"] = round(
                    cache.tier_stats["tokens_hit_cluster"] / total, 3
                )
            stats.append(entry)
        return stats

    def tier_summary(self):
        """Aggregate per-tier hit / transfer accounting for the whole run.

        Returns a :class:`~repro.simulation.metrics.TierSummary`, or None when
        the fleet runs without tiering.
        """
        if self.tier_config is None:
            return None
        from repro.simulation.metrics import summarize_tiers

        cache_stats = [
            state.instance.kv.stats()
            for state in self._all_states()
        ]
        cluster_stats = (
            self.cluster_store.stats if self.cluster_store is not None else None
        )
        return summarize_tiers(cache_stats, cluster_stats)

    def replica_reports(self, end_time: float) -> list[dict]:
        """Per-replica utilisation / hit-rate rows for fleet summaries.

        Args:
            end_time: Simulated time the run ended (upper bound of every
                replica's active window).
        """
        reports: list[dict] = []
        for state in self._all_states():
            until = state.retired_at if state.retired_at is not None else end_time
            active_seconds = max(until - state.created_at, 0.0)
            cache = state.instance.kv.stats()
            report = {
                "replica": state.instance.name,
                "finished": len(state.instance.finished_requests),
                "busy_s": round(state.instance.busy_time, 3),
                "active_s": round(active_seconds, 3),
                "utilization": (
                    min(state.instance.busy_time / active_seconds, 1.0)
                    if active_seconds > 0 else 0.0
                ),
                "request_hit_rate": cache.request_hit_rate,
                "token_hit_rate": cache.token_hit_rate,
                "retired": state.retired_at is not None,
            }
            if cache.offload_stats is not None:
                report["offload_stored"] = cache.offload_stats["stored_blocks"]
                report["offload_loaded"] = cache.offload_stats["loaded_blocks"]
                report["offload_evicted"] = cache.offload_stats["evicted_blocks"]
            reports.append(report)
        return reports
