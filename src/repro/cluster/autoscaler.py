"""Reactive autoscaling from observed arrival rate and tail latency.

The autoscaler watches two signals over a sliding window — the offered arrival
rate (requests per second) and the P99 end-to-end latency of recently finished
requests — and votes to add or remove one replica at a time.  Two mechanisms
prevent flapping:

* **a hysteresis band**: the per-replica arrival rate must exceed
  ``scale_up_rps_per_replica`` to grow but fall below the strictly lower
  ``scale_down_rps_per_replica`` to shrink, so a steady load that lands
  between the thresholds produces no events at all;
* **a cooldown**: after any scale event the autoscaler stays silent for
  ``cooldown_seconds`` so the fleet can observe the effect of the previous
  decision before making another.

It also holds all decisions until one full window of simulated time has
elapsed, because rate estimates over a nearly empty window are noise.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass

from repro.core.engine import FinishedRequest
from repro.errors import ConfigurationError
from repro.simulation.metrics import percentile


@dataclass(frozen=True)
class ScaleEvent:
    """Record of one applied scale decision.

    Attributes:
        time: Simulated time of the event.
        direction: ``"up"`` or ``"down"``.
        num_replicas: Active replica count *after* the event.
        reason: Why the autoscaler voted this way.
    """

    time: float
    direction: str
    num_replicas: int
    reason: str

    def as_dict(self) -> dict:
        """Plain-dict view for report tables."""
        return {
            "time_s": round(self.time, 3),
            "direction": self.direction,
            "num_replicas": self.num_replicas,
            "reason": self.reason,
        }


class Autoscaler(abc.ABC):
    """Votes on replica-count changes from observed fleet behaviour.

    The fleet feeds the autoscaler every arrival and completion, then calls
    :meth:`decide` after each simulation event; a positive return value asks
    for one more replica, a negative one for one fewer, zero for no change.
    The fleet applies the vote (subject to its own bounds) and records a
    :class:`ScaleEvent`.
    """

    #: Human-readable explanation of the most recent non-zero vote.
    last_reason: str = ""

    def observe_arrival(self, now: float) -> None:
        """Record one request arrival at simulated time ``now``."""

    def observe_completion(self, record: FinishedRequest) -> None:
        """Record one finished request (for latency-based signals)."""

    @abc.abstractmethod
    def decide(self, now: float, num_replicas: int, queue_depths: list[int]) -> int:
        """Return +1 (add a replica), -1 (remove one), or 0 (hold)."""


class ReactiveAutoscaler(Autoscaler):
    """Threshold autoscaler over arrival rate and P99 latency with hysteresis.

    Args:
        min_replicas / max_replicas: Hard bounds on the active replica count.
        scale_up_rps_per_replica: Grow when the windowed arrival rate divided
            by the current replica count exceeds this.
        scale_down_rps_per_replica: Shrink when the per-replica rate falls
            below this (must be strictly less than the scale-up threshold;
            defaults to half of it).
        p99_latency_slo: Optional latency SLO in seconds; when set, a windowed
            P99 above it triggers scale-up even if the rate looks fine.
        window_seconds: Length of the sliding observation window.
        cooldown_seconds: Minimum time between two scale events.
    """

    def __init__(self, min_replicas: int = 1, max_replicas: int = 8, *,
                 scale_up_rps_per_replica: float,
                 scale_down_rps_per_replica: float | None = None,
                 p99_latency_slo: float | None = None,
                 window_seconds: float = 30.0,
                 cooldown_seconds: float = 60.0) -> None:
        if min_replicas < 1:
            raise ConfigurationError("min_replicas must be at least 1")
        if max_replicas < min_replicas:
            raise ConfigurationError("max_replicas must be >= min_replicas")
        if scale_up_rps_per_replica <= 0:
            raise ConfigurationError("scale_up_rps_per_replica must be positive")
        if scale_down_rps_per_replica is None:
            scale_down_rps_per_replica = scale_up_rps_per_replica / 2.0
        if not 0 < scale_down_rps_per_replica < scale_up_rps_per_replica:
            raise ConfigurationError(
                "scale_down_rps_per_replica must lie strictly between 0 and "
                "scale_up_rps_per_replica (the hysteresis band)"
            )
        if window_seconds <= 0 or cooldown_seconds < 0:
            raise ConfigurationError("window/cooldown durations must be positive")
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.scale_up_rps_per_replica = scale_up_rps_per_replica
        self.scale_down_rps_per_replica = scale_down_rps_per_replica
        self.p99_latency_slo = p99_latency_slo
        self.window_seconds = window_seconds
        self.cooldown_seconds = cooldown_seconds
        self._arrivals: deque[float] = deque()
        self._completions: deque[tuple[float, float]] = deque()
        self._last_scale_time = -float("inf")

    # ------------------------------------------------------------ observation

    def observe_arrival(self, now: float) -> None:
        """Record one arrival timestamp into the sliding window."""
        self._arrivals.append(now)
        self._trim(now)

    def observe_completion(self, record: FinishedRequest) -> None:
        """Record one completion's (finish time, latency) into the window."""
        self._completions.append((record.finish_time, record.latency))
        self._trim(record.finish_time)

    def _trim(self, now: float) -> None:
        horizon = now - self.window_seconds
        while self._arrivals and self._arrivals[0] < horizon:
            self._arrivals.popleft()
        while self._completions and self._completions[0][0] < horizon:
            self._completions.popleft()

    # --------------------------------------------------------------- signals

    def arrival_rate(self, now: float) -> float:
        """Windowed arrival rate in requests per second."""
        self._trim(now)
        effective_window = min(self.window_seconds, now) or self.window_seconds
        return len(self._arrivals) / effective_window

    def p99_latency(self, now: float) -> float:
        """Windowed P99 end-to-end latency in seconds (0 when no completions)."""
        self._trim(now)
        return percentile([latency for _, latency in self._completions], 99)

    # --------------------------------------------------------------- decision

    def decide(self, now: float, num_replicas: int, queue_depths: list[int]) -> int:
        """Vote +1/-1/0 from the windowed rate and P99, respecting hysteresis."""
        if now < self.window_seconds:
            # Warm-up: a near-empty window makes count/elapsed wildly noisy in
            # both directions (one early arrival reads as a huge rate; no early
            # arrival reads as idleness).  Hold until the window has filled.
            return 0
        if now - self._last_scale_time < self.cooldown_seconds:
            return 0
        rate = self.arrival_rate(now)
        per_replica = rate / max(num_replicas, 1)
        p99 = self.p99_latency(now)

        if num_replicas < self.max_replicas:
            if per_replica > self.scale_up_rps_per_replica:
                self.last_reason = (
                    f"arrival rate {rate:.2f} rps = {per_replica:.2f} rps/replica "
                    f"> {self.scale_up_rps_per_replica:.2f}"
                )
                self._last_scale_time = now
                return 1
            if self.p99_latency_slo is not None and p99 > self.p99_latency_slo:
                self.last_reason = (
                    f"p99 latency {p99:.2f}s exceeds the {self.p99_latency_slo:.2f}s SLO"
                )
                self._last_scale_time = now
                return 1

        if (num_replicas > self.min_replicas
                and per_replica < self.scale_down_rps_per_replica
                and sum(queue_depths) == 0
                and (self.p99_latency_slo is None or p99 <= self.p99_latency_slo)):
            self.last_reason = (
                f"arrival rate {rate:.2f} rps = {per_replica:.2f} rps/replica "
                f"< {self.scale_down_rps_per_replica:.2f} and queues are empty"
            )
            self._last_scale_time = now
            return -1
        return 0
