"""Cluster fleet layer: multi-replica serving behind one entry point.

The paper deploys PrefillOnly as one engine instance per GPU with user-id
routing on top; this package grows that deployment rule into a fleet
abstraction suitable for production-scale simulation:

* :mod:`repro.cluster.fleet` — :class:`Fleet`, N (optionally heterogeneous)
  engine replicas with lazily advanced per-replica clocks;
* :mod:`repro.cluster.admission` — queue-depth admission control with load
  shedding;
* :mod:`repro.cluster.autoscaler` — reactive autoscaling from observed
  arrival rate and P99 latency, with hysteresis and cooldown.

The fleet also executes the failure lifecycle of the fault-injection
subsystem (:mod:`repro.faults`): :meth:`Fleet.apply_fault` handles replica
crashes (evacuate + re-route queued and in-flight work, drop the dead
replica's caches), recovery (rebuild, warm-restore hot prefixes from the
cluster-shared KV store), slow-node windows, interconnect brownouts, and
cluster-store outages — see ``docs/FAULTS.md``.

Routing policies live in :mod:`repro.simulation.routing` (the fleet accepts
any :class:`~repro.simulation.routing.Router`, including the prefix-affinity
router added for this layer), and the driving event loop is
:func:`repro.simulation.simulator.simulate_fleet`.
"""

from repro.cluster.admission import (
    ADMIT,
    AdmissionDecision,
    AdmissionPolicy,
    AlwaysAdmit,
    QueueDepthAdmission,
)
from repro.cluster.autoscaler import Autoscaler, ReactiveAutoscaler, ScaleEvent
from repro.cluster.fleet import Fleet, FleetStats, ReplicaSpec

__all__ = [
    "ADMIT",
    "AdmissionDecision",
    "AdmissionPolicy",
    "AlwaysAdmit",
    "QueueDepthAdmission",
    "Autoscaler",
    "ReactiveAutoscaler",
    "ScaleEvent",
    "Fleet",
    "FleetStats",
    "ReplicaSpec",
]
