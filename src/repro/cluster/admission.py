"""Queue-depth-based admission control with load shedding.

A production fleet cannot let queues grow without bound: past the saturation
point every admitted request only pushes P99 latency further out while
delivering no extra goodput.  The fleet therefore consults an
:class:`AdmissionPolicy` *before* routing; a shed request is recorded as a
rejection (with an ``admission control:`` reason) and never reaches an engine.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.workloads.trace import Request


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check.

    Attributes:
        admitted: Whether the request may be routed to a replica.
        reason: Human-readable shed reason when ``admitted`` is False.
    """

    admitted: bool
    reason: str | None = None


ADMIT = AdmissionDecision(admitted=True)


class AdmissionPolicy(abc.ABC):
    """Decides whether the fleet accepts a request at all.

    Policies see the fleet's current queue depths, not individual replicas'
    internals; they run before routing, so shedding is independent of the
    routing policy in use.
    """

    def __init__(self) -> None:
        self.num_admitted = 0
        self.num_shed = 0

    @abc.abstractmethod
    def check(self, request: Request, queue_depths: list[int], now: float) -> AdmissionDecision:
        """Return the admission decision for one request (no side effects)."""

    def admit(self, request: Request, queue_depths: list[int], now: float) -> AdmissionDecision:
        """Check one request and update the admitted/shed counters."""
        decision = self.check(request, queue_depths, now)
        if decision.admitted:
            self.num_admitted += 1
        else:
            self.num_shed += 1
        return decision


class AlwaysAdmit(AdmissionPolicy):
    """Admit everything (the default when no policy is configured)."""

    def check(self, request: Request, queue_depths: list[int], now: float) -> AdmissionDecision:
        """Always return an admit decision."""
        return ADMIT


class QueueDepthAdmission(AdmissionPolicy):
    """Shed load when every replica's queue is full (and optionally fleet-wide).

    Args:
        max_queue_depth: A request is shed when the *least-loaded* replica
            already has this many requests waiting — i.e. there is nowhere the
            router could place it without exceeding the per-replica bound.
        max_total_depth: Optional fleet-wide bound on the summed queue depth;
            checked first when set.
    """

    def __init__(self, max_queue_depth: int, *, max_total_depth: int | None = None) -> None:
        super().__init__()
        if max_queue_depth < 1:
            raise ConfigurationError("max_queue_depth must be at least 1")
        if max_total_depth is not None and max_total_depth < 1:
            raise ConfigurationError("max_total_depth must be at least 1 when set")
        self.max_queue_depth = max_queue_depth
        self.max_total_depth = max_total_depth

    def check(self, request: Request, queue_depths: list[int], now: float) -> AdmissionDecision:
        """Shed when the fleet-wide or per-replica queue bound is exhausted."""
        total = sum(queue_depths)
        if self.max_total_depth is not None and total >= self.max_total_depth:
            return AdmissionDecision(
                admitted=False,
                reason=(
                    f"admission control: fleet queue depth {total} has reached the "
                    f"limit of {self.max_total_depth}"
                ),
            )
        if queue_depths and min(queue_depths) >= self.max_queue_depth:
            return AdmissionDecision(
                admitted=False,
                reason=(
                    f"admission control: every replica has at least "
                    f"{self.max_queue_depth} requests waiting"
                ),
            )
        return ADMIT
