"""Unit helpers and constants shared across the repro package.

All byte quantities in the package are plain integers (bytes), all times are
floats in seconds, and all rates are floats in the natural SI unit (bytes per
second, FLOP per second).  These helpers exist so that call sites read as the
paper does ("24 GB GPU", "450 GB/s NVLink") instead of as raw powers of ten.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

MILLISECONDS = 1e-3
MICROSECONDS = 1e-6

TERA = 1e12
GIGA = 1e9


def gib(value: float) -> int:
    """Convert a value in GiB to bytes (rounded to an integer byte count)."""
    return int(value * GIB)


def mib(value: float) -> int:
    """Convert a value in MiB to bytes."""
    return int(value * MIB)


def kib(value: float) -> int:
    """Convert a value in KiB to bytes."""
    return int(value * KIB)


def tflops(value: float) -> float:
    """Convert a value in TFLOP/s to FLOP/s."""
    return value * TERA


def gbps(value: float) -> float:
    """Convert a value in GB/s to bytes/s."""
    return value * GB


def ms(value: float) -> float:
    """Convert a value in milliseconds to seconds."""
    return value * MILLISECONDS


def to_gib(num_bytes: float) -> float:
    """Convert bytes to GiB as a float (for reporting)."""
    return num_bytes / GIB


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds as a float (for reporting)."""
    return seconds / MILLISECONDS
