"""Generate the ``docs/SPEC.md`` field tables from the spec declarations.

One source of truth: every table row here is emitted from the same
:func:`repro.spec.core.spec_field` metadata the parsers and the fuzzer run
on, so the docs cannot drift from the code — ``scripts/docs_check.py``
regenerates the document and fails when the tracked copy differs, and
``prefillonly spec`` prints the same tables to the terminal.
"""

from __future__ import annotations

from repro.spec.core import field_rows, spec_fields
from repro.spec.models import DOCUMENTED_MODELS

__all__ = ["model_table", "spec_markdown", "GENERATED_BEGIN", "GENERATED_END"]

#: Markers bounding the generated region of ``docs/SPEC.md``.  Everything
#: between them is machine-written; prose outside them is hand-maintained.
GENERATED_BEGIN = "<!-- generated-spec-tables:begin (scripts/docs_check.py --update-spec) -->"
GENERATED_END = "<!-- generated-spec-tables:end -->"

_HEADER = ["field", "type", "default", "constraints", "description"]


def model_table(cls) -> str:
    """The markdown field table of one spec model."""
    rows = field_rows(cls)
    lines = [
        "| " + " | ".join(_HEADER) + " |",
        "|" + "|".join("---" for _ in _HEADER) + "|",
    ]
    for row in rows:
        cells = [
            f"`{row['field']}`", row["type"], row["default"],
            row["constraints"], row["description"],
        ]
        # A literal | inside a cell (e.g. "a | b | c" in a doc string) would
        # split the markdown column; escape it.
        cells = [cell.replace("|", "\\|") for cell in cells]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def _model_section(cls) -> str:
    info = cls.__spec__
    doc = (cls.__doc__ or "").strip().splitlines()[0]
    versions = ", ".join(str(v) for v in info.versions)
    return "\n".join([
        f"### `{info.title}` — {cls.__name__}",
        "",
        f"{doc}  Supported `\"version\"` values: {versions}.",
        "",
        model_table(cls),
    ])


def spec_markdown() -> str:
    """The full generated region of ``docs/SPEC.md`` (between the markers)."""
    sections = [_model_section(cls) for cls in DOCUMENTED_MODELS]
    return "\n\n".join(sections) + "\n"


def render_spec_doc(template: str) -> str:
    """Replace the generated region of a SPEC.md text with fresh tables.

    Raises:
        ValueError: when the markers are missing or out of order.
    """
    begin = template.find(GENERATED_BEGIN)
    end = template.find(GENERATED_END)
    if begin < 0 or end < 0 or end < begin:
        raise ValueError(
            "docs/SPEC.md is missing its generated-spec-tables markers"
        )
    head = template[: begin + len(GENERATED_BEGIN)]
    tail = template[end:]
    return head + "\n\n" + spec_markdown() + "\n" + tail


def model_summary_rows() -> list[dict]:
    """One row per documented model, for the ``prefillonly spec`` overview."""
    rows = []
    for cls in DOCUMENTED_MODELS:
        info = cls.__spec__
        fields = spec_fields(cls)
        required = sum(1 for f in fields.values() if f.required)
        rows.append({
            "model": cls.__name__,
            "path": info.title,
            "fields": len(fields),
            "required": required,
        })
    return rows
