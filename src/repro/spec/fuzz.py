"""Hypothesis strategies for *valid* configs, derived from the spec models.

Two layers:

* :func:`field_strategy` / :func:`model_strategy` — generic derivation from
  the :func:`~repro.spec.core.spec_field` declarations (``fuzz`` bounds,
  ``choices``, types), usable for any model whose fields are independent;
* :func:`scenario_configs` — the composite the scenario fuzzer runs on:
  whole random scenario documents (arrivals × tenants × kv_tiers × faults ×
  fleet shapes × shard counts) that are *valid by construction*, including
  the cross-field rules a generic derivation cannot know (``recover_at``
  after ``at``, overlap-free fault windows, workload-specific parameter
  names);
* the **config-pair mutators** (:func:`capacity_pair_configs`,
  :func:`admission_pair_configs`, :func:`interconnect_pair_configs`) — each
  draws a ``(base, better)`` pair of scenario documents identical except for
  one resource knob turned strictly in the favourable direction, for the
  metamorphic relations ``tests/test_metamorphic.py`` checks (more replicas
  never lower goodput, a deeper admission queue never sheds more, a faster
  interconnect never raises mean latency).  The pairs draw from a restricted
  family — no faults, no autoscaler, a fixed router per relation — because
  the relations are monotonicity claims about *resources*, and adaptive
  control loops may legitimately trade the measured metric for another.

Everything generated here must simulate in milliseconds: tenant sizes,
arrival rates, and fault horizons are deliberately tiny so CI can push
hundreds of scenarios through the full fleet simulator per run (see
``tests/test_scenario_fuzz.py`` and ``make fuzz``).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.spec.core import FieldInfo, spec_fields
from repro.spec.models import (
    AlertRuleSpec,
    AutoscaleSpec,
    BreakerSpec,
    DeadlineSpec,
    GenerateSpec,
    HedgeSpec,
    KVTiersSpec,
    ObservabilitySpec,
    RetrySpec,
)

__all__ = [
    "field_strategy",
    "model_strategy",
    "kv_tiers_configs",
    "autoscale_configs",
    "alert_rule_configs",
    "observability_configs",
    "fault_configs",
    "spot_preempt_configs",
    "degrade_configs",
    "resilience_configs",
    "tenant_configs",
    "scenario_configs",
    "capacity_pair_configs",
    "admission_pair_configs",
    "interconnect_pair_configs",
    "deadline_pair_configs",
    "hedge_pair_configs",
    "breaker_toggle_configs",
]

#: Number of decimal places generated floats are rounded to — keeps failing
#: examples short enough to paste into a scenario JSON for replay.
_FLOAT_PLACES = 3


def _bounded_floats(lo: float, hi: float):
    return st.floats(lo, hi, allow_nan=False, allow_infinity=False).map(
        lambda value: round(value, _FLOAT_PLACES)
    )


def field_strategy(info: FieldInfo):
    """Derive a strategy for one field from its declaration, or None.

    Uses the declared ``fuzz`` bounds when present (a ``(lo, hi)`` numeric
    tuple, or a tuple of strings to sample from), falling back to ``choices``
    and plain booleans.  Fields a generic derivation cannot handle (nested
    models, polymorphic lists) return None and are composed by hand.
    """
    if info.fuzz is not None:
        if all(isinstance(value, str) for value in info.fuzz):
            return st.sampled_from(info.fuzz)
        lo, hi = info.fuzz
        if int in info.types and float not in info.types:
            return st.integers(int(lo), int(hi))
        return _bounded_floats(float(lo), float(hi))
    if info.choices is not None:
        return st.sampled_from(info.choices)
    if info.types == (bool,):
        return st.booleans()
    return None


def model_strategy(cls, *, required_only: bool = False, **overrides):
    """A dict strategy for a spec model with independent fields.

    Required fields always appear; optional ones appear or not (hypothesis
    explores both, so defaulting paths get fuzzed too).  Fields without a
    derivable strategy are skipped unless supplied via ``overrides``.

    Args:
        cls: The spec-model class.
        required_only: Only emit required keys (smallest valid config).
        **overrides: Per-field strategy (or omit a field with ``None``).
    """
    mandatory: dict = {}
    optional: dict = {}
    for name, info in spec_fields(cls).items():
        if name in overrides:
            strategy = overrides[name]
        else:
            strategy = field_strategy(info)
        if strategy is None:
            continue
        if info.required:
            mandatory[name] = strategy
        elif not required_only:
            optional[name] = strategy
    return st.fixed_dictionaries(mandatory, optional=optional)


def kv_tiers_configs():
    """Random valid ``"kv_tiers"`` blocks (always enabled — a disabled block
    is byte-identical to omission, which the scenario composite already
    covers by omitting the key)."""
    tier_models = spec_fields(KVTiersSpec)["tiers"].key_models
    tier_entries = st.fixed_dictionaries({}, optional={
        name: model_strategy(model) for name, model in tier_models.items()
    })
    return model_strategy(
        KVTiersSpec,
        enabled=st.just(True),
        tiers=tier_entries,
        demote_on_evict=st.booleans(),
        prefetch=st.booleans(),
        promotion=st.sampled_from(spec_fields(KVTiersSpec)["promotion"].choices),
    )


def autoscale_configs():
    """Random valid ``"autoscale"`` blocks (max >= min by construction)."""
    return model_strategy(AutoscaleSpec)


def alert_rule_configs(*, name: str = "rule-0"):
    """Random valid ``observability.alerts[]`` rules.

    ``short_window_s < long_window_s`` holds by construction: the short
    draw's ceiling (4) and the *default* short (6) both sit below the long
    draw's floor (7), and the default long (30) sits above the short draw's
    ceiling — so any appear/omit combination is valid.  No ``tenant`` pin —
    tenant names aren't known at this level, and a tenant-less rule applies
    to every SLO tenant.
    """
    return model_strategy(
        AlertRuleSpec,
        name=st.just(name),
        long_window_s=_bounded_floats(7.0, 60.0),
        short_window_s=_bounded_floats(0.5, 4.0),
    )


@st.composite
def observability_configs(draw):
    """Random valid ``"observability"`` blocks (always enabled — a disabled
    block is byte-identical to omission, which the scenario composite covers
    by omitting the key).  Custom bucket lists are strictly increasing by
    construction (sorted unique positive floats)."""
    config: dict = draw(model_strategy(ObservabilitySpec, enabled=st.just(True)))
    if draw(st.booleans()):
        config["latency_buckets"] = sorted(draw(st.lists(
            _bounded_floats(0.05, 30.0), min_size=1, max_size=5, unique=True,
        )))
    if draw(st.booleans()):
        config["alerts"] = [
            draw(alert_rule_configs(name=f"rule-{index}"))
            for index in range(draw(st.integers(1, 2)))
        ]
    return config


@st.composite
def fault_configs(draw, *, replicas: int):
    """Random valid ``"faults"`` blocks for a fleet of ``replicas`` replicas.

    Cross-field rules hold by construction: ``recover_at`` strictly after
    ``at``, and at most one window per (kind, replica) so same-kind windows
    can never overlap.
    """
    events: list[dict] = []
    for _ in range(draw(st.integers(0, 2))):
        replica = draw(st.integers(0, replicas - 1))
        at = draw(_bounded_floats(0.0, 30.0))
        event = {"kind": "crash", "replica": replica, "at": at}
        if draw(st.booleans()):
            event["recover_at"] = round(at + draw(_bounded_floats(0.5, 30.0)), _FLOAT_PLACES)
        events.append(event)
    for replica in range(replicas):
        if draw(st.booleans()):
            continue
        events.append({
            "kind": "slow", "replica": replica,
            "at": draw(_bounded_floats(0.0, 20.0)),
            "duration": draw(_bounded_floats(1.0, 20.0)),
            "multiplier": draw(_bounded_floats(1.2, 6.0)),
        })
    if draw(st.booleans()):
        events.append({
            "kind": "brownout",
            "at": draw(_bounded_floats(0.0, 20.0)),
            "duration": draw(_bounded_floats(1.0, 20.0)),
            "multiplier": draw(_bounded_floats(1.2, 6.0)),
        })
    if draw(st.booleans()):
        events.append({
            "kind": "outage",
            "at": draw(_bounded_floats(0.0, 20.0)),
            "duration": draw(_bounded_floats(1.0, 20.0)),
        })
    if draw(st.booleans()):
        events.append(draw(spot_preempt_configs(replicas=replicas)))
    config: dict = {"enabled": True, "events": events}
    if draw(st.booleans()):
        config["warm_restore_blocks"] = draw(st.integers(0, 128))
    if draw(st.booleans()):
        config["generate"] = draw(model_strategy(
            GenerateSpec,
            mtbf_s=_bounded_floats(20.0, 120.0),
            mttr_s=_bounded_floats(2.0, 20.0),
            horizon_s=_bounded_floats(10.0, 60.0),
            replicas=None,  # inherit the scenario's replica count
        ))
    return config


@st.composite
def spot_preempt_configs(draw, *, replicas: int):
    """One valid spot-preemption event — ``recover_at`` strictly after the
    kill at ``at + warning_s`` by construction."""
    event: dict = {
        "kind": "spot_preempt",
        "replica": draw(st.integers(0, replicas - 1)),
        "at": draw(_bounded_floats(0.0, 20.0)),
        "warning_s": draw(_bounded_floats(0.5, 10.0)),
    }
    if draw(st.booleans()):
        event["recover_at"] = round(
            event["at"] + event["warning_s"] + draw(_bounded_floats(0.5, 20.0)),
            _FLOAT_PLACES,
        )
    return event


@st.composite
def degrade_configs(draw, *, tenant_names: tuple = ()):
    """Random valid ``"degrade"`` blocks — ``shed_depth_per_replica`` at or
    above ``depth_per_replica`` by construction."""
    config: dict = {"depth_per_replica": draw(_bounded_floats(1.0, 16.0))}
    if draw(st.booleans()):
        config["shed_depth_per_replica"] = round(
            config["depth_per_replica"] + draw(_bounded_floats(0.0, 16.0)),
            _FLOAT_PLACES,
        )
    if draw(st.booleans()):
        config["sustain_s"] = draw(_bounded_floats(0.0, 10.0))
    if draw(st.booleans()):
        config["recover_s"] = draw(_bounded_floats(0.0, 10.0))
    if tenant_names and draw(st.booleans()):
        config["low_priority_tenants"] = draw(st.lists(
            st.sampled_from(sorted(tenant_names)), min_size=1,
            max_size=len(tenant_names), unique=True,
        ))
    return config


@st.composite
def resilience_configs(draw, *, tenant_names: tuple = ()):
    """Random valid ``"resilience"`` blocks (always with at least one
    sub-policy — an empty or disabled block is byte-identical to omission,
    which the scenario composite covers by omitting the key)."""
    config: dict = {}
    if draw(st.booleans()):
        config["seed"] = draw(st.integers(0, 2**16))
    if draw(st.booleans()):
        config["deadline"] = draw(model_strategy(
            DeadlineSpec, timeout_s=_bounded_floats(2.0, 60.0),
        ))
    if draw(st.booleans()):
        config["retry"] = draw(model_strategy(RetrySpec))
    if draw(st.booleans()):
        config["hedge"] = draw(model_strategy(HedgeSpec))
    if draw(st.booleans()):
        config["breaker"] = draw(model_strategy(BreakerSpec))
    if draw(st.booleans()):
        config["degrade"] = draw(degrade_configs(tenant_names=tenant_names))
    if not any(key in config for key in
               ("deadline", "retry", "hedge", "breaker", "degrade")):
        config["deadline"] = {"timeout_s": draw(_bounded_floats(2.0, 60.0))}
    return config


#: Per-arrival-process parameter strategies — names must match the factories
#: in :data:`repro.simulation.arrival.ARRIVAL_FACTORIES` (pinned by a test).
_ARRIVAL_STRATEGIES: dict = {
    "poisson": {"rate": _bounded_floats(1.0, 8.0)},
    "uniform": {"rate": _bounded_floats(1.0, 8.0)},
    "burst": {"at_time": _bounded_floats(0.0, 5.0)},
    "mmpp": {
        "base_rate": _bounded_floats(1.0, 4.0),
        "burst_rate": _bounded_floats(5.0, 12.0),
        "mean_quiet_seconds": _bounded_floats(2.0, 10.0),
        "mean_burst_seconds": _bounded_floats(1.0, 5.0),
        "start_bursting": st.booleans(),
    },
    "diurnal": {
        "mean_rate": _bounded_floats(1.0, 6.0),
        "period_seconds": _bounded_floats(10.0, 60.0),
        "amplitude": _bounded_floats(0.1, 0.9),
    },
    "flash-crowd": {
        "base_rate": _bounded_floats(1.0, 3.0),
        "spike_rate": _bounded_floats(6.0, 12.0),
        "first_spike_at": _bounded_floats(1.0, 5.0),
        "spike_seconds": _bounded_floats(1.0, 5.0),
        "spike_interval_seconds": _bounded_floats(8.0, 20.0),
    },
    "closed-loop": {
        "num_clients": st.integers(2, 4),
        "mean_think_seconds": _bounded_floats(0.2, 2.0),
    },
}

#: Per-workload parameter strategies, sized so every generated trace stays a
#: handful of small requests (the fuzzer simulates hundreds of scenarios).
_WORKLOAD_STRATEGIES: dict = {
    "post-recommendation": {
        "num_users": st.integers(2, 4),
        "posts_per_user": st.integers(2, 5),
    },
    "credit-verification": {
        "num_users": st.integers(2, 3),
        "months_of_history": st.integers(1, 2),
        "month_min_tokens": st.just(200),
        "month_max_tokens": st.just(400),
    },
}


@st.composite
def tenant_configs(draw, *, name: str):
    """One random valid tenant entry."""
    workload = draw(st.sampled_from(sorted(_WORKLOAD_STRATEGIES)))
    arrival = draw(st.sampled_from(sorted(_ARRIVAL_STRATEGIES)))
    tenant: dict = {
        "name": name,
        "workload": workload,
        "workload_params": draw(st.fixed_dictionaries(_WORKLOAD_STRATEGIES[workload])),
        "arrival": arrival,
        "arrival_params": draw(st.fixed_dictionaries(_ARRIVAL_STRATEGIES[arrival])),
    }
    if draw(st.booleans()):
        tenant["weight"] = draw(st.sampled_from([0.5, 0.75, 1.0]))
    if draw(st.booleans()):
        tenant["slo_latency_s"] = draw(_bounded_floats(0.5, 10.0))
    return tenant


@st.composite
def scenario_configs(draw):
    """Whole random valid scenario documents, small enough to simulate fast.

    Dimensions covered: tenant count and composition (workload × params ×
    arrival process × weight × SLO), replica count, router, admission
    control, autoscaling, tiered KV cache, and fault schedules — the full
    config space the spec layer accepts, not just the cookbook corner.
    """
    replicas = draw(st.integers(1, 3))
    num_tenants = draw(st.integers(1, 2))
    config: dict = {
        "name": "fuzz-scenario",
        "replicas": replicas,
        "router": draw(st.sampled_from(["user-id", "least-loaded", "prefix-affinity"])),
        "seed": draw(st.integers(0, 2**16)),
        "tenants": [
            draw(tenant_configs(name=f"tenant-{index}"))
            for index in range(num_tenants)
        ],
    }
    if draw(st.booleans()):
        config["max_queue_depth"] = draw(st.integers(2, 32))
    if draw(st.booleans()):
        config["autoscale"] = draw(autoscale_configs())
    if draw(st.booleans()):
        config["kv_tiers"] = draw(kv_tiers_configs())
    if draw(st.booleans()):
        config["faults"] = draw(fault_configs(replicas=replicas))
    if draw(st.booleans()):
        # Exercise the sharded engine: the invariant test's second run takes
        # the "auto" mode, so decoupled draws pin lockstep == parallel too.
        config["shards"] = draw(st.integers(2, 4))
    if draw(st.booleans()):
        # Recording observes the run without changing it, so the fuzzer's
        # invariants must hold verbatim with the recorder switched on.
        config["observability"] = draw(observability_configs())
    if draw(st.booleans()):
        config["resilience"] = draw(resilience_configs(
            tenant_names=tuple(t["name"] for t in config["tenants"]),
        ))
    return config


# --------------------------------------------------------------------------
# Config-pair mutators for the metamorphic relations.
# --------------------------------------------------------------------------


@st.composite
def _metamorphic_base_configs(draw, *, router: str, admission: bool,
                              tiers: bool = False):
    """A restricted scenario family the metamorphic relations hold over.

    No faults and no autoscaler (adaptive control may trade the measured
    metric for resilience or cost), a caller-fixed router (so the pair's
    routing policy is the same function on both sides), and the usual tiny
    tenant mixes.  ``build_mix`` derives the request stream from tenants and
    seed alone, so both sides of every pair see the identical offered load.
    """
    config: dict = {
        "name": "metamorphic-base",
        "replicas": draw(st.integers(1, 3)),
        "router": router,
        "seed": draw(st.integers(0, 2**16)),
        "tenants": [
            draw(tenant_configs(name=f"tenant-{index}"))
            for index in range(draw(st.integers(1, 2)))
        ],
    }
    if admission:
        config["max_queue_depth"] = draw(st.integers(1, 4))
    if tiers:
        config["kv_tiers"] = {
            "enabled": True,
            "tiers": {
                "host": {
                    "capacity_gib": draw(_bounded_floats(0.25, 4.0)),
                    "link": "pcie-gen4",
                },
            },
        }
    return config


@st.composite
def capacity_pair_configs(draw):
    """``(base, more)``: ``more`` only adds replicas.

    Relation: added replica capacity never lowers goodput.  Uses the
    least-loaded router — its decision ("the emptiest queue") extends
    pointwise to a larger fleet, unlike hash routers whose assignment
    reshuffles with the modulus.
    """
    base = draw(_metamorphic_base_configs(router="least-loaded",
                                          admission=True))
    more = dict(base)
    more["replicas"] = base["replicas"] + draw(st.integers(1, 2))
    return base, more


@st.composite
def admission_pair_configs(draw):
    """``(base, deeper)``: ``deeper`` only raises ``max_queue_depth``.

    Relation: a deeper admission queue never sheds more requests.  Uses the
    user-id router — routing is a pure function of the arrival sequence, so
    the deeper queue admits a superset per replica with no feedback through
    routing decisions.
    """
    base = draw(_metamorphic_base_configs(router="user-id", admission=True))
    deeper = dict(base)
    deeper["max_queue_depth"] = base["max_queue_depth"] + draw(st.integers(1, 8))
    return base, deeper


@st.composite
def interconnect_pair_configs(draw):
    """``(base, faster)``: ``faster`` only upgrades the L2 tier link.

    Relation: a faster interconnect (pcie-gen4 -> nvlink: 18x the bandwidth,
    a third of the latency) never raises mean latency.  No admission control
    on either side, so every request finishes and the means average the same
    request population.

    Two extra restrictions make the relation exact rather than statistical:
    every tenant bursts at the same instant (when all arrivals precede all
    completions, each replica's FIFO order alone determines the cache state
    at every request start, so both sides take identical hit/miss decisions
    and differ only in the charged transfer time — with staggered arrivals,
    a completion-time shift can flip which of two prefix-sharing requests
    wins the GPU-resident prefix, and the loser's L2 fetch may cost more
    than the resident hit it displaced), and the shared L3 tier is disabled
    (a publish from one replica lands in the other replicas' lookup path at
    a link-dependent time, breaking the per-replica argument).
    """
    base = draw(_metamorphic_base_configs(router="user-id", admission=False,
                                          tiers=True))
    at_time = draw(_bounded_floats(0.0, 5.0))
    for tenant in base["tenants"]:
        tenant["arrival"] = "burst"
        tenant["arrival_params"] = {"at_time": at_time}
    base["kv_tiers"] = {
        **base["kv_tiers"],
        "tiers": {**base["kv_tiers"]["tiers"],
                  "cluster": {"capacity_gib": 0.0}},
    }
    faster = dict(base)
    faster["kv_tiers"] = {
        **base["kv_tiers"],
        "tiers": {**base["kv_tiers"]["tiers"],
                  "host": {**base["kv_tiers"]["tiers"]["host"],
                           "link": "nvlink"}},
    }
    return base, faster


@st.composite
def deadline_pair_configs(draw):
    """``(base, longer)``: ``longer`` only extends the deadline.

    Relation: a longer deadline never misses more deadlines.  Deadline-only
    resilience on the user-id router (routing is a pure function of the
    arrival sequence, so both sides route identically); no faults, no
    autoscaler, no admission — a cancellation only ever *frees* capacity, so
    the later cancellation instants of the longer side cannot make any
    request later than it was on the base side.
    """
    base = draw(_metamorphic_base_configs(router="user-id", admission=False))
    base["resilience"] = {
        "deadline": {"timeout_s": draw(_bounded_floats(0.5, 10.0))},
    }
    longer = dict(base)
    longer["resilience"] = {
        "deadline": {"timeout_s": round(
            base["resilience"]["deadline"]["timeout_s"]
            + draw(_bounded_floats(0.5, 30.0)), _FLOAT_PLACES,
        )},
    }
    return base, longer


@st.composite
def hedge_pair_configs(draw):
    """``(base, hedged)``: ``hedged`` only adds first-completion-wins hedging.

    Relation: hedging with loser cancellation never increases crash-lost
    tokens.  The family keeps the relation exact by construction: every crash
    lands strictly before the fixed hedge delay has elapsed (crashes at
    t < 1.8, ``delay_s`` >= 2.0), so the two runs are identical through the
    last loss event and any *excess* loss on the hedged side can only come
    from hedge accounting itself — a cancelled loser or a surviving copy
    billed as lost work.  Crashes landing *after* hedges are in flight move
    other requests' completion times and can change which work a crash
    catches in flight, so that regime is pinned by the deterministic
    rollback tests in ``tests/test_resilience.py`` instead of a monotonic
    relation here.
    """
    base = draw(_metamorphic_base_configs(router="user-id", admission=False))
    replicas = max(base["replicas"], 2)
    base["replicas"] = replicas
    events = []
    for _ in range(draw(st.integers(1, 2))):
        at = draw(_bounded_floats(0.2, 1.8))
        events.append({
            "kind": "crash",
            "replica": draw(st.integers(0, replicas - 1)),
            "at": at,
            "recover_at": round(at + draw(_bounded_floats(1.0, 10.0)),
                                _FLOAT_PLACES),
        })
    base["faults"] = {"enabled": True, "events": events}
    hedged = dict(base)
    hedged["resilience"] = {"hedge": draw(model_strategy(
        HedgeSpec,
        delay_s=_bounded_floats(2.0, 6.0),
        min_samples=st.integers(1, 4),
    ))}
    return base, hedged


@st.composite
def breaker_toggle_configs(draw):
    """``(base, toggled)``: identical scenarios, ``toggled`` carrying a
    ``"resilience"`` block that is present but inert (``enabled: false``, or
    enabled with no sub-policies).

    Relation: an inert block is byte-identical to omission — the
    resilience-off contract the golden fingerprints pin for the cookbook,
    fuzzed across the whole config family here.
    """
    base = draw(scenario_configs())
    base.pop("resilience", None)
    toggled = dict(base)
    inert = draw(st.sampled_from(["disabled", "empty"]))
    if inert == "disabled":
        block = draw(resilience_configs())
        block["enabled"] = False
        toggled["resilience"] = block
    else:
        toggled["resilience"] = {"enabled": True}
    return base, toggled
