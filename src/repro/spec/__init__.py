"""repro.spec — the declarative, versioned config-spec layer.

Declare a config format once (:func:`spec_model` + :func:`spec_field`) and
get parsing, normalization, docs tables, and hypothesis fuzzing from the one
declaration.  See :mod:`repro.spec.core` for the engine,
:mod:`repro.spec.models` for the shipped models, and :mod:`repro.spec.fuzz`
for the derived strategies.
"""

from repro.errors import SpecError, SpecVersionError
from repro.spec.core import (
    MISSING,
    FieldInfo,
    field_rows,
    from_dict,
    is_spec_model,
    normalize,
    spec_field,
    spec_fields,
    spec_model,
    to_dict,
)
from repro.spec.models import (
    FAULT_KINDS,
    TIER_NAMES,
    AutoscaleSpec,
    BrownoutEventSpec,
    ClusterTierSpec,
    CrashEventSpec,
    FaultsSpec,
    GenerateSpec,
    HostTierSpec,
    KVTiersSpec,
    OutageEventSpec,
    RecoverEventSpec,
    ScenarioModel,
    SlowEventSpec,
    TenantModel,
    parse_fault_event,
)

__all__ = [
    "MISSING",
    "FieldInfo",
    "SpecError",
    "SpecVersionError",
    "spec_field",
    "spec_model",
    "spec_fields",
    "is_spec_model",
    "from_dict",
    "to_dict",
    "normalize",
    "field_rows",
    "TIER_NAMES",
    "FAULT_KINDS",
    "HostTierSpec",
    "ClusterTierSpec",
    "KVTiersSpec",
    "CrashEventSpec",
    "RecoverEventSpec",
    "SlowEventSpec",
    "BrownoutEventSpec",
    "OutageEventSpec",
    "GenerateSpec",
    "FaultsSpec",
    "AutoscaleSpec",
    "TenantModel",
    "ScenarioModel",
    "parse_fault_event",
]
