"""The declarative spec engine: one validation path for every config parser.

Before this layer, the scenario / KV-tier / fault / fleet config parsers were
four hand-rolled ``*_from_dict`` functions with divergent error behaviour.
Here, a config format is *declared* once — a frozen dataclass whose fields are
built with :func:`spec_field` (type, default, range, choices, docs) and whose
class is decorated with :func:`spec_model` (error class, base JSON path,
supported versions) — and everything else derives from the declaration:

* :func:`from_dict` — parse a decoded JSON object into the model, rejecting
  unknown keys, missing required keys, type mismatches (``bool`` is never an
  ``int``), out-of-range values, and bad choices, every failure carrying the
  dotted JSON path of the offending value;
* :func:`to_dict` — emit the *normalized* config dict (defaults filled,
  numbers coerced, keys in declaration order), the round-trip inverse that
  ``to_dict(from_dict(x)) == normalize(x)`` pins;
* :func:`normalize` — fill defaults and coerce values **without** building
  model objects: an independent second implementation of the declaration that
  the round-trip property checks the parser against;
* :func:`field_rows` — name/type/default/constraints rows for the generated
  ``docs/SPEC.md`` tables (``scripts/docs_check.py`` fails on drift);
* :mod:`repro.spec.fuzz` — hypothesis strategies for *valid* configs, derived
  from the same field declarations.

Versioning: every model accepts an optional ``"version"`` key.  A version the
build does not support raises :class:`~repro.errors.SpecVersionError` naming
the supported versions, so a config written for a future format fails loudly
instead of half-parsing.

Models stay *pure data* mirroring the JSON shape (the firebolt SDK's
model/service split): the service layers (``repro.simulation.scenario``,
``repro.kvcache.tiers.config``, ``repro.faults.schedule``) convert models into
the runtime objects they always produced, byte-identically.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from repro.errors import SpecError, SpecVersionError

__all__ = [
    "MISSING",
    "FieldInfo",
    "spec_field",
    "spec_model",
    "is_spec_model",
    "spec_fields",
    "from_dict",
    "to_dict",
    "normalize",
    "field_rows",
]

#: Sentinel: the field has no default and must appear in the config.
MISSING = dataclasses.MISSING

#: Config key every model accepts for format versioning.
VERSION_KEY = "version"

_METADATA_KEY = "repro.spec"


@dataclasses.dataclass(frozen=True)
class FieldInfo:
    """The declarative description of one config key.

    Attributes:
        types: Accepted Python types of the decoded JSON value.  ``bool`` is
            only accepted when explicitly listed — a JSON ``true`` is never a
            valid integer or number.
        default: Normalized default, or :data:`MISSING` for a required key.
        doc: One-line description, emitted into the generated field tables.
        minimum / maximum: Inclusive numeric bounds (``exclusive_minimum``
            makes the lower bound strict).
        choices: Closed set of allowed values.
        convert: Post-validation coercion (e.g. ``float``) applied both when
            parsing and when normalizing.
        check: Extra validator ``check(value, path)`` that raises on bad
            values — the hook for field-specific error classes and messages.
        model: Nested spec-model class (the value is a JSON object).
        item_parser: For lists: ``item_parser(value, path)`` parses one
            element (used where elements are polymorphic, like fault events).
        item_normalizer: For lists: the normalization counterpart of
            ``item_parser``.
        key_models: For fixed-key mappings (``"tiers"``): allowed key ->
            nested model class.
        unknown_key_error: For ``key_models`` mappings: factory
            ``(key, path) -> Exception`` for unknown keys (lets the tiers
            block keep raising :class:`~repro.errors.UnknownTierError`).
        fuzz: Optional hint for :mod:`repro.spec.fuzz` — either a hypothesis
            strategy factory or a bounding tuple; see ``strategy_for_field``.
        constraint_doc: Human-readable constraint column override for the
            generated docs table.
    """

    types: tuple[type, ...]
    default: Any = MISSING
    doc: str = ""
    minimum: float | None = None
    maximum: float | None = None
    exclusive_minimum: bool = False
    choices: tuple | None = None
    convert: Callable[[Any], Any] | None = None
    check: Callable[[Any, str], None] | None = None
    model: type | None = None
    item_parser: Callable[[Any, str], Any] | None = None
    item_normalizer: Callable[[Any, str], Any] | None = None
    key_models: dict[str, type] | None = None
    unknown_key_error: Callable[[str, str], Exception] | None = None
    fuzz: Any = None
    constraint_doc: str | None = None

    @property
    def required(self) -> bool:
        return self.default is MISSING

    def type_name(self) -> str:
        """Human-readable type for error messages and doc tables."""
        if self.model is not None or self.key_models is not None:
            return "object"
        if self.item_parser is not None:
            return "array"
        names = {bool: "boolean", int: "integer", float: "number",
                 str: "string", dict: "object", list: "array"}
        wanted = [t for t in self.types if t is not bool or bool in self.types]
        if int in self.types and float in self.types:
            return "number"
        return "/".join(dict.fromkeys(names.get(t, t.__name__) for t in wanted))


def spec_field(*, default: Any = MISSING, types: Any = None, doc: str = "",
               minimum: float | None = None, maximum: float | None = None,
               exclusive_minimum: bool = False, choices=None,
               convert: Callable | None = None, check: Callable | None = None,
               model: type | None = None, item_parser: Callable | None = None,
               item_normalizer: Callable | None = None,
               key_models: dict[str, type] | None = None,
               unknown_key_error: Callable | None = None,
               fuzz: Any = None, constraint_doc: str | None = None):
    """Declare one spec-model field (a :func:`dataclasses.field` wrapper).

    Args:
        default: Normalized default value; omit to make the key required.
            Mutable defaults (``{}``, ``[]``, ``()``) are copied per instance.
        types: Accepted decoded-JSON type or tuple of types.  Inferred as
            ``dict`` / ``list`` when ``model`` / ``item_parser`` is given.
        Everything else: see :class:`FieldInfo`.
    """
    if types is None:
        if model is not None or key_models is not None:
            types = (dict,)
        elif item_parser is not None:
            types = (list,)
        elif choices is not None:
            types = tuple({type(choice) for choice in choices})
        else:
            raise TypeError("spec_field needs types= (or model=/item_parser=)")
    if not isinstance(types, tuple):
        types = (types,)
    info = FieldInfo(
        types=types, default=default, doc=doc, minimum=minimum, maximum=maximum,
        exclusive_minimum=exclusive_minimum,
        choices=tuple(choices) if choices is not None else None,
        convert=convert, check=check, model=model, item_parser=item_parser,
        item_normalizer=item_normalizer, key_models=key_models,
        unknown_key_error=unknown_key_error, fuzz=fuzz,
        constraint_doc=constraint_doc,
    )
    kwargs: dict = {"metadata": {_METADATA_KEY: info}}
    if default is MISSING:
        kwargs["default"] = None  # dataclass default; parsing enforces presence
    elif isinstance(default, (dict, list)):
        kwargs["default_factory"] = (dict if isinstance(default, dict) else list)
    else:
        kwargs["default"] = default
    return dataclasses.field(**kwargs)


@dataclasses.dataclass(frozen=True)
class ModelInfo:
    """Per-model spec metadata attached by :func:`spec_model`."""

    error: type
    path: str
    versions: tuple[int, ...]
    title: str


def spec_model(*, error: type = SpecError, path: str = "",
               versions: tuple[int, ...] = (1,), title: str = ""):
    """Class decorator registering a frozen dataclass as a spec model.

    Args:
        error: Exception class raised for every validation failure of this
            model; must accept ``(message, *, path=...)``.
        path: Default dotted JSON path of the model when parsed as a document
            root (nested parses pass their own).
        versions: Config format versions this build understands.
        title: Section heading for the generated docs table (defaults to the
            class name).
    """

    def wrap(cls: type) -> type:
        cls.__spec__ = ModelInfo(
            error=error, path=path, versions=tuple(versions),
            title=title or cls.__name__,
        )
        return cls

    return wrap


def is_spec_model(cls) -> bool:
    return hasattr(cls, "__spec__")


def spec_fields(cls) -> dict[str, FieldInfo]:
    """Config key -> :class:`FieldInfo` for a spec model, declaration order."""
    infos: dict[str, FieldInfo] = {}
    for field in dataclasses.fields(cls):
        info = field.metadata.get(_METADATA_KEY)
        if info is not None:
            infos[field.name] = info
    return infos


def _type_ok(value, info: FieldInfo) -> bool:
    if isinstance(value, bool):
        return bool in info.types
    return isinstance(value, info.types)


def _check_value(name: str, value, info: FieldInfo, *, path: str, error: type):
    """Validate and coerce one scalar value; returns the normalized value."""
    value_path = f"{path}.{name}" if path else name
    if info.check is not None:
        info.check(value, value_path)
    if not _type_ok(value, info):
        raise error(
            f"{name} must be {_article(info.type_name())}, got {value!r}",
            path=value_path,
        )
    if info.choices is not None and value not in info.choices:
        known = ", ".join(str(choice) for choice in sorted(info.choices, key=str))
        raise error(
            f"unknown {name} {value!r}; available: {known}", path=value_path
        )
    if info.minimum is not None:
        if info.exclusive_minimum:
            if value <= info.minimum:
                raise error(
                    f"{name} must be greater than {info.minimum:g}, got {value:g}",
                    path=value_path,
                )
        elif value < info.minimum:
            bound = (
                "non-negative" if info.minimum == 0
                else f"at least {info.minimum:g}"
            )
            raise error(f"{name} must be {bound}, got {value:g}", path=value_path)
    if info.maximum is not None and value > info.maximum:
        raise error(
            f"{name} must be at most {info.maximum:g}, got {value:g}",
            path=value_path,
        )
    if info.convert is not None:
        value = info.convert(value)
    elif isinstance(value, dict):
        value = dict(value)
    elif isinstance(value, list):
        value = list(value)
    return value


def _article(type_name: str) -> str:
    return ("an " if type_name[:1] in "aio" else "a ") + type_name


def _check_version(cls, data: dict, *, path: str, error: type):
    """Validate the optional ``"version"`` key; returns the resolved version."""
    model_info: ModelInfo = cls.__spec__
    version = data.get(VERSION_KEY, model_info.versions[-1])
    if isinstance(version, bool) or not isinstance(version, int):
        raise error(
            f"version must be an integer, got {version!r}",
            path=f"{path}.{VERSION_KEY}" if path else VERSION_KEY,
        )
    if version not in model_info.versions:
        raise SpecVersionError(
            version, model_info.versions,
            path=f"{path}.{VERSION_KEY}" if path else VERSION_KEY,
        )
    return version


def from_dict(cls, data, *, path: str | None = None):
    """Parse a decoded JSON object into an instance of spec model ``cls``.

    Raises the model's declared error class (a :class:`~repro.errors.SpecError`
    subclass) on any shape problem, always carrying the dotted JSON path, and
    :class:`~repro.errors.SpecVersionError` on an unsupported ``"version"``.
    After construction, the model's optional ``__spec_validate__(path)`` hook
    runs for cross-field checks.
    """
    model_info: ModelInfo = cls.__spec__
    error = model_info.error
    if path is None:
        path = model_info.path
    if not isinstance(data, dict):
        raise error(
            f"expected a JSON object, got {type(data).__name__}", path=path
        )
    infos = spec_fields(cls)
    unknown = set(data) - set(infos) - {VERSION_KEY}
    if unknown:
        raise error(f"unknown keys {sorted(unknown)}", path=path)
    version = _check_version(cls, data, path=path, error=error)

    kwargs: dict = {}
    for name, info in infos.items():
        if name == VERSION_KEY:
            kwargs[name] = version
            continue
        if name not in data:
            if info.required:
                raise error(f"missing required key {name!r}", path=path)
            kwargs[name] = _default_value(info)
            continue
        value = data[name]
        child_path = f"{path}.{name}" if path else name
        if info.model is not None:
            if value is None:
                kwargs[name] = None
                continue
            kwargs[name] = from_dict(info.model, value, path=child_path)
        elif info.key_models is not None:
            kwargs[name] = _parse_key_models(
                name, value, info, path=child_path, error=error
            )
        elif info.item_parser is not None:
            if not isinstance(value, list):
                raise error(f"{name} must be a JSON array", path=child_path)
            kwargs[name] = tuple(
                info.item_parser(entry, f"{child_path}[{index}]")
                for index, entry in enumerate(value)
            )
        else:
            kwargs[name] = _check_value(name, value, info, path=path, error=error)
    instance = cls(**kwargs)
    validate = getattr(instance, "__spec_validate__", None)
    if validate is not None:
        validate(path)
    return instance


def _default_value(info: FieldInfo):
    default = info.default
    if isinstance(default, dict):
        return dict(default)
    if isinstance(default, list):
        return list(default)
    if info.item_parser is not None and default == ():
        return ()
    return default


def _parse_key_models(name: str, value, info: FieldInfo, *, path: str,
                      error: type) -> dict:
    if not isinstance(value, dict):
        raise error(f"{name} must be a JSON object", path=path)
    parsed = {}
    for key, entry in value.items():
        model = info.key_models.get(key)
        if model is None:
            if info.unknown_key_error is not None:
                raise info.unknown_key_error(key, path)
            raise error(f"unknown keys ['{key}']", path=path)
        parsed[key] = from_dict(model, entry, path=f"{path}.{key}")
    return parsed


def to_dict(instance) -> dict:
    """Emit a spec model as its *normalized* config dict.

    Defaults are filled, numbers are coerced, keys follow declaration order,
    and optional blocks whose value is None are omitted — the exact shape
    :func:`normalize` produces from the raw input.
    """
    cls = type(instance)
    result: dict = {}
    for name, info in spec_fields(cls).items():
        value = getattr(instance, name)
        if value is None:
            continue
        if info.model is not None and value is not None:
            result[name] = to_dict(value)
        elif info.key_models is not None:
            result[name] = {key: to_dict(entry) for key, entry in value.items()}
        elif info.item_parser is not None:
            result[name] = [
                to_dict(entry) if is_spec_model(type(entry)) else entry
                for entry in value
            ]
        elif isinstance(value, dict):
            result[name] = dict(value)
        else:
            result[name] = value
    return result


def normalize(cls, data, *, path: str | None = None) -> dict:
    """Normalize a raw config dict *without* constructing model objects.

    An independent walk over the same declarations that :func:`from_dict`
    uses: validates shape, fills defaults, applies coercions, orders keys.
    ``to_dict(from_dict(cls, x)) == normalize(cls, x)`` is the round-trip
    property the spec tests pin — two code paths, one declaration.
    """
    model_info: ModelInfo = cls.__spec__
    error = model_info.error
    if path is None:
        path = model_info.path
    if not isinstance(data, dict):
        raise error(
            f"expected a JSON object, got {type(data).__name__}", path=path
        )
    infos = spec_fields(cls)
    unknown = set(data) - set(infos) - {VERSION_KEY}
    if unknown:
        raise error(f"unknown keys {sorted(unknown)}", path=path)
    version = _check_version(cls, data, path=path, error=error)
    result: dict = {}
    for name, info in infos.items():
        child_path = f"{path}.{name}" if path else name
        if name == VERSION_KEY:
            result[name] = version
            continue
        if name not in data:
            default = _default_value(info)
            if default is None:
                continue
            if info.item_parser is not None and default == ():
                result[name] = []
            else:
                result[name] = default
            continue
        value = data[name]
        if info.model is not None:
            if value is None:
                continue
            result[name] = normalize(info.model, value, path=child_path)
        elif info.key_models is not None:
            if not isinstance(value, dict):
                raise error(f"{name} must be a JSON object", path=child_path)
            normalized = {}
            for key, entry in value.items():
                model = info.key_models.get(key)
                if model is None:
                    if info.unknown_key_error is not None:
                        raise info.unknown_key_error(key, child_path)
                    raise error(f"unknown keys ['{key}']", path=child_path)
                normalized[key] = normalize(model, entry, path=f"{child_path}.{key}")
            result[name] = normalized
        elif info.item_parser is not None:
            if not isinstance(value, list):
                raise error(f"{name} must be a JSON array", path=child_path)
            normalizer = info.item_normalizer
            if normalizer is None:
                raise error(
                    f"{name} has no item normalizer declared", path=child_path
                )
            result[name] = [
                normalizer(entry, f"{child_path}[{index}]")
                for index, entry in enumerate(value)
            ]
        else:
            result[name] = _check_value(name, value, info, path=path, error=error)
    return result


def field_rows(cls) -> list[dict]:
    """name/type/default/constraints/description rows for docs generation."""
    rows = []
    for name, info in spec_fields(cls).items():
        if info.required:
            default = "*required*"
        elif info.default is None:
            default = "—"
        elif info.default == () or info.default == {}:
            default = "`[]`" if info.item_parser is not None else "`{}`"
        else:
            default = f"`{json_repr(info.default)}`"
        constraints = info.constraint_doc
        if constraints is None:
            parts = []
            if info.choices is not None:
                parts.append(
                    "one of " + ", ".join(
                        f"`{json_repr(c)}`"
                        for c in sorted(info.choices, key=str)
                    )
                )
            if info.minimum is not None:
                parts.append(
                    (f"> {info.minimum:g}" if info.exclusive_minimum
                     else f">= {info.minimum:g}")
                )
            if info.maximum is not None:
                parts.append(f"<= {info.maximum:g}")
            if info.model is not None:
                parts.append(f"see `{info.model.__name__}`")
            if info.key_models is not None:
                parts.append(
                    ", ".join(
                        f"`{key}` -> `{model.__name__}`"
                        for key, model in info.key_models.items()
                    )
                )
            constraints = "; ".join(parts) or "—"
        rows.append({
            "field": name,
            "type": info.type_name(),
            "default": default,
            "constraints": constraints,
            "description": info.doc,
        })
    return rows


def json_repr(value) -> str:
    """JSON-ish literal for docs tables (True -> true, None -> null)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if value is None:
        return "null"
    if isinstance(value, str):
        return f'"{value}"'
    return repr(value)
