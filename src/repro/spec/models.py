"""The declarative spec models of every JSON config format.

Pure-data mirrors of the JSON shapes the system parses — scenario documents,
``"kv_tiers"`` blocks, ``"faults"`` blocks, tenants, autoscale policies, and
fault events — declared once with :func:`repro.spec.core.spec_field` and
consumed three ways: parsing (:func:`repro.spec.core.from_dict`),
normalization / docs generation, and hypothesis fuzzing
(:mod:`repro.spec.fuzz`).

The models deliberately know nothing about engines, fleets, or schedules:
converting a model into its runtime object (``TierConfig``,
``FaultSchedule``, ``ScenarioSpec``) is the service layer's job
(``repro.kvcache.tiers.config``, ``repro.faults.schedule``,
``repro.simulation.scenario``), which keeps the dependency direction
one-way and the parse results byte-identical to the pre-spec parsers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    FaultScheduleError,
    ResilienceSpecError,
    ScenarioSpecError,
    TierCapacityError,
    TierSpecError,
    UnknownFaultError,
    UnknownTierError,
)
from repro.spec.core import from_dict, normalize, spec_field, spec_model

__all__ = [
    "TIER_NAMES",
    "FAULT_KINDS",
    "HostTierSpec",
    "ClusterTierSpec",
    "KVTiersSpec",
    "CrashEventSpec",
    "RecoverEventSpec",
    "SlowEventSpec",
    "BrownoutEventSpec",
    "OutageEventSpec",
    "SpotPreemptEventSpec",
    "GenerateSpec",
    "FaultsSpec",
    "AutoscaleSpec",
    "ObservabilitySpec",
    "AlertRuleSpec",
    "DeadlineSpec",
    "RetrySpec",
    "HedgeSpec",
    "BreakerSpec",
    "DegradationSpec",
    "ResilienceSpec",
    "TenantModel",
    "ScenarioModel",
    "parse_fault_event",
    "normalize_fault_event",
    "DOCUMENTED_MODELS",
]

#: The tiers a ``"kv_tiers"`` block may size.  ``gpu`` (L1) is sized by the
#: engine's profile run, not by config, so it is deliberately absent here.
TIER_NAMES = ("host", "cluster")

#: The fault kinds a ``"faults"`` block's ``events`` list may use.
FAULT_KINDS = ("crash", "recover", "slow", "brownout", "outage", "spot_preempt")

#: Promotion policy names (mirrors ``repro.kvcache.tiers.policy``; kept as a
#: literal so the spec layer stays import-light — pinned against the registry
#: by the spec tests).
PROMOTION_POLICY_NAMES = ("always", "never", "on-nth-hit")


def _capacity_check(tier: str):
    """Per-tier capacity validator preserving the typed TierCapacityError."""

    def check(value, path: str) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TierCapacityError(
                f"capacity_gib must be a number, got {value!r}",
                tier=tier, path=path,
            )
        if value < 0:
            raise TierCapacityError(
                f"{tier} capacity_gib must be non-negative, got {value}",
                tier=tier, path=path,
            )

    return check


@spec_model(error=TierSpecError, path="kv_tiers.tiers.host",
            title="kv_tiers.tiers.host")
@dataclass(frozen=True)
class HostTierSpec:
    """Sizing of the per-replica host-memory (L2) tier."""

    capacity_gib: float = spec_field(
        default=4.0, types=(int, float), convert=float,
        check=_capacity_check("host"), constraint_doc=">= 0 (0 disables L2)",
        fuzz=(0.001, 64.0),
        doc="Host-memory budget (GiB) of the per-replica L2 store.",
    )
    link: str = spec_field(
        default="pcie-gen4", types=str,
        doc="Interconnect name charged for GPU <-> host transfers.",
        fuzz=("pcie-gen4",),
    )


@spec_model(error=TierSpecError, path="kv_tiers.tiers.cluster",
            title="kv_tiers.tiers.cluster")
@dataclass(frozen=True)
class ClusterTierSpec:
    """Sizing of the fleet-shared cluster (L3) tier."""

    capacity_gib: float = spec_field(
        default=16.0, types=(int, float), convert=float,
        check=_capacity_check("cluster"), constraint_doc=">= 0 (0 disables L3)",
        fuzz=(0.001, 256.0),
        doc="Byte budget (GiB) of the fleet-shared L3 store.",
    )
    link: str = spec_field(
        default="nvlink", types=str,
        doc="Interconnect name charged for replica <-> cluster-store transfers.",
        fuzz=("nvlink",),
    )


@spec_model(error=TierSpecError, path="kv_tiers", title="kv_tiers")
@dataclass(frozen=True)
class KVTiersSpec:
    """One ``"kv_tiers"`` config block (see ``docs/KV_TIERS.md``)."""

    version: int = spec_field(
        default=1, types=int, doc="Config format version.",
    )
    enabled: bool = spec_field(
        default=False, types=bool,
        doc="Master switch; false is byte-identical to omitting the block.",
    )
    tiers: dict = spec_field(
        default={},
        key_models={"host": HostTierSpec, "cluster": ClusterTierSpec},
        unknown_key_error=lambda key, path: UnknownTierError(
            key, TIER_NAMES, path=path
        ),
        doc="Per-tier sizing; unknown tier names fail with the valid names.",
    )
    promotion: str = spec_field(
        default="on-nth-hit", choices=PROMOTION_POLICY_NAMES, types=str,
        doc="When a lower-tier hit is promoted into GPU memory.",
    )
    promotion_threshold: int = spec_field(
        default=2, types=int, minimum=1, fuzz=(1, 4),
        doc="The N of the on-nth-hit promotion policy.",
    )
    demote_on_evict: bool = spec_field(
        default=True, types=bool,
        doc="Evictions cascade down the hierarchy instead of dropping blocks.",
    )
    prefetch: bool = spec_field(
        default=True, types=bool,
        doc="Router-hint prefetch into the routed replica before dispatch.",
    )


# --------------------------------------------------------------- fault events


@spec_model(error=FaultScheduleError, title="faults.events[] (crash)")
@dataclass(frozen=True)
class CrashEventSpec:
    """Kill a replica; optionally schedule its repair."""

    kind: str = spec_field(default="crash", choices=("crash",), types=str,
                           doc="Event kind discriminator.")
    replica: int = spec_field(
        types=int, minimum=0, fuzz=(0, 3),
        doc="Logical replica id the crash targets.",
    )
    at: float = spec_field(
        types=(int, float), minimum=0, convert=float, fuzz=(0.0, 120.0),
        doc="Simulated crash time (seconds).",
    )
    recover_at: float | None = spec_field(
        default=None, types=(int, float), minimum=0, convert=float,
        fuzz=(0.001, 240.0),
        doc="Optional repair time; must be after ``at``.",
    )

    def __spec_validate__(self, path: str) -> None:
        if self.recover_at is not None and self.recover_at <= self.at:
            raise FaultScheduleError(
                f"recover_at ({self.recover_at:g}) must be after at ({self.at:g})",
                path=f"{path}.recover_at",
            )


@spec_model(error=FaultScheduleError, title="faults.events[] (recover)")
@dataclass(frozen=True)
class RecoverEventSpec:
    """Repair a previously crashed replica."""

    kind: str = spec_field(default="recover", choices=("recover",), types=str,
                           doc="Event kind discriminator.")
    replica: int = spec_field(
        types=int, minimum=0, fuzz=(0, 3),
        doc="Logical replica id to rebuild.",
    )
    at: float = spec_field(
        types=(int, float), minimum=0, convert=float, fuzz=(0.0, 240.0),
        doc="Simulated repair time (seconds).",
    )


@spec_model(error=FaultScheduleError, title="faults.events[] (slow)")
@dataclass(frozen=True)
class SlowEventSpec:
    """Degrade one replica's service time for a window."""

    kind: str = spec_field(default="slow", choices=("slow",), types=str,
                           doc="Event kind discriminator.")
    replica: int = spec_field(
        types=int, minimum=0, fuzz=(0, 3),
        doc="Logical replica id the degradation targets.",
    )
    at: float = spec_field(
        types=(int, float), minimum=0, convert=float, fuzz=(0.0, 120.0),
        doc="Window start (seconds).",
    )
    duration: float = spec_field(
        types=(int, float), minimum=0, exclusive_minimum=True, convert=float,
        fuzz=(0.5, 60.0),
        doc="Window length (seconds).",
    )
    multiplier: float = spec_field(
        default=2.0, types=(int, float), minimum=0, exclusive_minimum=True,
        convert=float, fuzz=(1.1, 8.0),
        doc="Service-time multiplier applied inside the window.",
    )


@spec_model(error=FaultScheduleError, title="faults.events[] (brownout)")
@dataclass(frozen=True)
class BrownoutEventSpec:
    """Multiply every tier transfer cost fleet-wide for a window."""

    kind: str = spec_field(default="brownout", choices=("brownout",), types=str,
                           doc="Event kind discriminator.")
    at: float = spec_field(
        types=(int, float), minimum=0, convert=float, fuzz=(0.0, 120.0),
        doc="Window start (seconds).",
    )
    duration: float = spec_field(
        types=(int, float), minimum=0, exclusive_minimum=True, convert=float,
        fuzz=(0.5, 60.0),
        doc="Window length (seconds).",
    )
    multiplier: float = spec_field(
        default=4.0, types=(int, float), minimum=0, exclusive_minimum=True,
        convert=float, fuzz=(1.1, 8.0),
        doc="Tier transfer-cost multiplier applied inside the window.",
    )


@spec_model(error=FaultScheduleError, title="faults.events[] (outage)")
@dataclass(frozen=True)
class OutageEventSpec:
    """Take the fleet-shared cluster (L3) store down for a window."""

    kind: str = spec_field(default="outage", choices=("outage",), types=str,
                           doc="Event kind discriminator.")
    at: float = spec_field(
        types=(int, float), minimum=0, convert=float, fuzz=(0.0, 120.0),
        doc="Window start (seconds).",
    )
    duration: float = spec_field(
        types=(int, float), minimum=0, exclusive_minimum=True, convert=float,
        fuzz=(0.5, 60.0),
        doc="Window length (seconds).",
    )


@spec_model(error=FaultScheduleError, title="faults.events[] (spot_preempt)")
@dataclass(frozen=True)
class SpotPreemptEventSpec:
    """Preempt a spot replica with warning: drain, then kill what remains.

    Models a cloud provider reclaiming a preemptible instance.  At ``at`` the
    replica stops taking traffic and starts draining (flushing hot prefixes
    into the shared cluster store on the way out, like a scale-down); at
    ``at + warning_s`` whatever has not drained is killed like a crash.  An
    optional ``recover_at`` schedules a fresh replacement in the same logical
    slot (spot capacity coming back).
    """

    kind: str = spec_field(default="spot_preempt", choices=("spot_preempt",),
                           types=str, doc="Event kind discriminator.")
    replica: int = spec_field(
        types=int, minimum=0, fuzz=(0, 3),
        doc="Logical replica id the preemption targets.",
    )
    at: float = spec_field(
        types=(int, float), minimum=0, convert=float, fuzz=(0.0, 120.0),
        doc="Simulated preemption-notice time (seconds).",
    )
    warning_s: float = spec_field(
        default=30.0, types=(int, float), minimum=0, exclusive_minimum=True,
        convert=float, fuzz=(1.0, 60.0),
        doc="Grace period between the notice and the kill (seconds).",
    )
    recover_at: float | None = spec_field(
        default=None, types=(int, float), minimum=0, convert=float,
        fuzz=(0.001, 240.0),
        doc="Optional replacement time; must be after ``at + warning_s``.",
    )

    def __spec_validate__(self, path: str) -> None:
        if (self.recover_at is not None
                and self.recover_at <= self.at + self.warning_s):
            raise FaultScheduleError(
                f"recover_at ({self.recover_at:g}) must be after the kill at "
                f"at + warning_s ({self.at + self.warning_s:g})",
                path=f"{path}.recover_at",
            )


_EVENT_MODELS = {
    "crash": CrashEventSpec,
    "recover": RecoverEventSpec,
    "slow": SlowEventSpec,
    "brownout": BrownoutEventSpec,
    "outage": OutageEventSpec,
    "spot_preempt": SpotPreemptEventSpec,
}


def parse_fault_event(entry, path: str):
    """Parse one polymorphic ``events[]`` entry by its ``kind`` discriminator.

    Raises:
        UnknownFaultError: when ``kind`` names no registered fault kind (the
            message lists the valid kinds and the JSON path of the typo).
        FaultScheduleError: on any other malformed key or value.
    """
    if not isinstance(entry, dict):
        raise FaultScheduleError(
            f"expected a JSON object, got {type(entry).__name__}", path=path
        )
    kind = entry.get("kind")
    model = _EVENT_MODELS.get(kind)
    if model is None:
        raise UnknownFaultError(str(kind), FAULT_KINDS, path=f"{path}.kind")
    return from_dict(model, entry, path=path)


def normalize_fault_event(entry, path: str) -> dict:
    """The :func:`repro.spec.core.normalize` counterpart of the event union."""
    if not isinstance(entry, dict):
        raise FaultScheduleError(
            f"expected a JSON object, got {type(entry).__name__}", path=path
        )
    kind = entry.get("kind")
    model = _EVENT_MODELS.get(kind)
    if model is None:
        raise UnknownFaultError(str(kind), FAULT_KINDS, path=f"{path}.kind")
    return normalize(model, entry, path=path)


@spec_model(error=FaultScheduleError, path="faults.generate",
            title="faults.generate")
@dataclass(frozen=True)
class GenerateSpec:
    """Seeded per-replica crash/recover processes (exponential MTBF/MTTR)."""

    mtbf_s: float = spec_field(
        types=(int, float), minimum=0, exclusive_minimum=True, convert=float,
        fuzz=(20.0, 600.0),
        doc="Mean time between failures per replica (seconds).",
    )
    mttr_s: float = spec_field(
        types=(int, float), minimum=0, exclusive_minimum=True, convert=float,
        fuzz=(5.0, 120.0),
        doc="Mean time to repair (seconds).",
    )
    horizon_s: float = spec_field(
        types=(int, float), minimum=0, exclusive_minimum=True, convert=float,
        fuzz=(30.0, 600.0),
        doc="Generation horizon (seconds); repairs past it stay down.",
    )
    seed: int = spec_field(
        default=0, types=int, minimum=0, fuzz=(0, 2**16),
        doc="Seed of the per-replica fault streams.",
    )
    replicas: int | None = spec_field(
        default=None, types=int, minimum=1, fuzz=(1, 4),
        doc="Replica count; defaults to the surrounding scenario's.",
    )


@spec_model(error=FaultScheduleError, path="faults", title="faults")
@dataclass(frozen=True)
class FaultsSpec:
    """One ``"faults"`` config block (see ``docs/FAULTS.md``)."""

    version: int = spec_field(
        default=1, types=int, doc="Config format version.",
    )
    enabled: bool = spec_field(
        default=True, types=bool,
        doc="Master switch; false injects nothing, byte-identical to omission.",
    )
    warm_restore_blocks: int = spec_field(
        default=256, types=int, minimum=0, fuzz=(0, 512),
        doc="L3 -> L2 warm-restore budget (blocks) on replica rejoin.",
    )
    events: tuple = spec_field(
        default=(), item_parser=parse_fault_event,
        item_normalizer=normalize_fault_event,
        constraint_doc="array of fault events, dispatched on `kind`",
        doc="Explicit fault events (see the per-kind tables below).",
    )
    generate: GenerateSpec | None = spec_field(
        default=None, model=GenerateSpec,
        doc="Seeded crash/recover generator, merged with ``events``.",
    )


# ------------------------------------------------------------------ scenarios


@spec_model(error=ScenarioSpecError, path="autoscale", title="autoscale")
@dataclass(frozen=True)
class AutoscaleSpec:
    """Reactive autoscaler bounds and thresholds."""

    min_replicas: int = spec_field(
        default=1, types=int, minimum=1, fuzz=(1, 2),
        doc="Lower bound on the active replica count.",
    )
    max_replicas: int = spec_field(
        default=8, types=int, minimum=1, fuzz=(2, 6),
        doc="Upper bound on the active replica count.",
    )
    scale_up_rps_per_replica: float = spec_field(
        types=(int, float), minimum=0, exclusive_minimum=True, convert=float,
        fuzz=(0.5, 8.0),
        doc="Windowed arrival rate per replica that triggers scale-up.",
    )
    window_seconds: float = spec_field(
        default=30.0, types=(int, float), minimum=0, exclusive_minimum=True,
        convert=float, fuzz=(5.0, 60.0),
        doc="Length of the sliding observation window (seconds).",
    )
    cooldown_seconds: float = spec_field(
        default=60.0, types=(int, float), minimum=0, convert=float,
        fuzz=(0.0, 120.0),
        doc="Minimum time between two scale events (seconds).",
    )

    def __spec_validate__(self, path: str) -> None:
        if self.max_replicas < self.min_replicas:
            raise ScenarioSpecError(
                f"max_replicas ({self.max_replicas}) must be >= min_replicas "
                f"({self.min_replicas})", path=f"{path}.max_replicas",
            )


def _parse_latency_bucket(entry, path: str) -> float:
    if isinstance(entry, bool) or not isinstance(entry, (int, float)) or entry <= 0:
        raise ScenarioSpecError(
            f"latency bucket edges must be positive numbers, got {entry!r}",
            path=path,
        )
    return float(entry)


@spec_model(error=ScenarioSpecError, path="observability.alerts[]",
            title="observability.alerts[]")
@dataclass(frozen=True)
class AlertRuleSpec:
    """One multi-window burn-rate alert rule under ``observability.alerts``.

    Evaluated post-hoc by ``prefillonly obs alerts`` against the tenants'
    latency SLOs (see "Analyzing traces" in ``docs/OBSERVABILITY.md``).
    """

    name: str = spec_field(
        types=str, doc="Rule name (alert events and reports key on it).",
    )
    objective: float = spec_field(
        default=0.99, types=(int, float), minimum=0, exclusive_minimum=True,
        convert=float, fuzz=(0.5, 0.999),
        constraint_doc="in (0, 1); the error budget is 1 - objective",
        doc="SLO attainment objective the error budget derives from.",
    )
    long_window_s: float = spec_field(
        default=30.0, types=(int, float), minimum=0, exclusive_minimum=True,
        convert=float, fuzz=(5.0, 60.0),
        doc="Long burn-rate window (simulated seconds).",
    )
    short_window_s: float = spec_field(
        default=6.0, types=(int, float), minimum=0, exclusive_minimum=True,
        convert=float, fuzz=(1.0, 5.0),
        constraint_doc="positive, < long_window_s",
        doc="Short confirmation window (simulated seconds).",
    )
    burn_rate: float = spec_field(
        default=6.0, types=(int, float), minimum=0, exclusive_minimum=True,
        convert=float, fuzz=(1.0, 20.0),
        doc="Budget-consumption multiple both windows must reach to fire.",
    )
    severity: str = spec_field(
        default="ticket", choices=("page", "ticket"),
        doc="Alert severity label carried on emitted events.",
    )
    tenant: str | None = spec_field(
        default=None, types=str,
        doc="Restrict the rule to one tenant; omit for every SLO tenant.",
    )

    def __spec_validate__(self, path: str) -> None:
        if not self.name:
            raise ScenarioSpecError("alert rule name must be non-empty",
                                    path=f"{path}.name")
        if self.objective >= 1.0:
            raise ScenarioSpecError(
                f"objective must be < 1 (the error budget is 1 - objective), "
                f"got {self.objective:g}", path=f"{path}.objective",
            )
        if self.short_window_s >= self.long_window_s:
            raise ScenarioSpecError(
                f"short_window_s ({self.short_window_s:g}) must be < "
                f"long_window_s ({self.long_window_s:g})",
                path=f"{path}.short_window_s",
            )


def _parse_alert_rule(entry, path: str) -> AlertRuleSpec:
    return from_dict(AlertRuleSpec, entry, path=path)


def _normalize_alert_rule(entry, path: str) -> dict:
    return normalize(AlertRuleSpec, entry, path=path)


@spec_model(error=ScenarioSpecError, path="observability", title="observability")
@dataclass(frozen=True)
class ObservabilitySpec:
    """One ``"observability"`` config block (see ``docs/OBSERVABILITY.md``)."""

    version: int = spec_field(
        default=1, types=int, doc="Config format version.",
    )
    enabled: bool = spec_field(
        default=False, types=bool,
        doc="Master switch; false records nothing, byte-identical to omission.",
    )
    spans: bool = spec_field(
        default=True, types=bool,
        doc="Record per-request lifecycle span events.",
    )
    metrics: bool = spec_field(
        default=True, types=bool,
        doc="Record the sampled time-series metrics.",
    )
    sample_interval_s: float = spec_field(
        default=1.0, types=(int, float), minimum=0, exclusive_minimum=True,
        convert=float, fuzz=(0.25, 5.0),
        doc="Simulated seconds between metric sample boundaries.",
    )
    latency_buckets: tuple = spec_field(
        default=(), item_parser=_parse_latency_bucket,
        item_normalizer=_parse_latency_bucket,
        constraint_doc="strictly increasing positive numbers; empty uses "
                       "the default buckets",
        doc="Request-latency histogram bucket upper edges (seconds).",
    )
    alerts: tuple = spec_field(
        default=(), item_parser=_parse_alert_rule,
        item_normalizer=_normalize_alert_rule,
        constraint_doc="array of alert rules; empty uses the built-in "
                       "fast-burn/slow-burn pair",
        doc="Burn-rate alert rules for ``prefillonly obs alerts``.",
    )

    def __spec_validate__(self, path: str) -> None:
        for previous, current in zip(self.latency_buckets,
                                     self.latency_buckets[1:]):
            if current <= previous:
                raise ScenarioSpecError(
                    "latency_buckets must be strictly increasing, got "
                    f"{current:g} after {previous:g}",
                    path=f"{path}.latency_buckets",
                )


# ----------------------------------------------------------------- resilience


@spec_model(error=ResilienceSpecError, path="resilience.deadline",
            title="resilience.deadline")
@dataclass(frozen=True)
class DeadlineSpec:
    """Per-request deadlines: cancel work past ``arrival + timeout_s``."""

    timeout_s: float = spec_field(
        types=(int, float), minimum=0, exclusive_minimum=True, convert=float,
        fuzz=(1.0, 120.0),
        doc="Deadline measured from the request's arrival (seconds).",
    )


@spec_model(error=ResilienceSpecError, path="resilience.retry",
            title="resilience.retry")
@dataclass(frozen=True)
class RetrySpec:
    """Bounded retries with exponential backoff + seeded jitter."""

    max_attempts: int = spec_field(
        default=3, types=int, minimum=1, fuzz=(1, 4),
        doc="Maximum re-executions of one request after crashes.",
    )
    budget_per_tenant: int | None = spec_field(
        default=None, types=int, minimum=0, fuzz=(0, 64),
        doc="Total retries a tenant may consume; omit for unlimited.",
    )
    backoff_base_s: float = spec_field(
        default=0.5, types=(int, float), minimum=0, exclusive_minimum=True,
        convert=float, fuzz=(0.05, 5.0),
        doc="Backoff before the first retry (seconds).",
    )
    backoff_multiplier: float = spec_field(
        default=2.0, types=(int, float), minimum=1, convert=float,
        fuzz=(1.0, 4.0),
        doc="Backoff growth factor per attempt.",
    )
    jitter: float = spec_field(
        default=0.5, types=(int, float), minimum=0, convert=float,
        fuzz=(0.0, 1.0),
        doc="Jitter fraction: the delay is scaled by ``1 + jitter * u`` with "
            "``u`` drawn from the request's seeded RNG stream.",
    )


@spec_model(error=ResilienceSpecError, path="resilience.hedge",
            title="resilience.hedge")
@dataclass(frozen=True)
class HedgeSpec:
    """Hedged requests: duplicate stragglers, first completion wins."""

    delay_s: float | None = spec_field(
        default=None, types=(int, float), minimum=0, exclusive_minimum=True,
        convert=float, fuzz=(0.1, 30.0),
        doc="Fixed hedge delay (seconds); omit to derive it from the "
            "latency percentile below.",
    )
    percentile: float = spec_field(
        default=95.0, types=(int, float), minimum=50, maximum=100,
        convert=float, fuzz=(50.0, 99.0),
        doc="Completed-latency percentile used as the hedge delay once "
            "``min_samples`` completions exist.",
    )
    min_samples: int = spec_field(
        default=20, types=int, minimum=1, fuzz=(1, 32),
        doc="Completions needed before the percentile delay activates.",
    )
    min_delay_s: float = spec_field(
        default=0.05, types=(int, float), minimum=0, exclusive_minimum=True,
        convert=float, fuzz=(0.01, 2.0),
        doc="Lower bound on the derived hedge delay (seconds).",
    )


@spec_model(error=ResilienceSpecError, path="resilience.breaker",
            title="resilience.breaker")
@dataclass(frozen=True)
class BreakerSpec:
    """Per-replica circuit breaker driving health-aware routing."""

    window: int = spec_field(
        default=20, types=int, minimum=1, fuzz=(4, 32),
        doc="Trailing request outcomes tracked per replica.",
    )
    failure_ratio: float = spec_field(
        default=0.5, types=(int, float), minimum=0, exclusive_minimum=True,
        maximum=1.0, convert=float, fuzz=(0.2, 1.0),
        doc="Windowed failure fraction that opens the breaker.",
    )
    min_samples: int = spec_field(
        default=5, types=int, minimum=1, fuzz=(1, 8),
        doc="Outcomes needed in the window before the breaker may trip.",
    )
    cooldown_s: float = spec_field(
        default=30.0, types=(int, float), minimum=0, exclusive_minimum=True,
        convert=float, fuzz=(1.0, 120.0),
        doc="Open duration before the breaker half-opens (seconds).",
    )
    half_open_probes: int = spec_field(
        default=2, types=int, minimum=1, fuzz=(1, 4),
        doc="Probe requests a half-open replica may receive.",
    )
    slow_latency_s: float | None = spec_field(
        default=None, types=(int, float), minimum=0, exclusive_minimum=True,
        convert=float, fuzz=(0.5, 30.0),
        doc="Completions slower than this count as failures; omit so only "
            "deadline misses count.",
    )


@spec_model(error=ResilienceSpecError, path="resilience.degrade",
            title="resilience.degrade")
@dataclass(frozen=True)
class DegradationSpec:
    """Brownout tiers: shed background traffic under sustained pressure."""

    depth_per_replica: float = spec_field(
        types=(int, float), minimum=0, exclusive_minimum=True, convert=float,
        fuzz=(1.0, 32.0),
        doc="Mean waiting-queue depth per replica that enters brownout "
            "tier 1 (prefetch and L3 publish traffic pause).",
    )
    shed_depth_per_replica: float | None = spec_field(
        default=None, types=(int, float), minimum=0, exclusive_minimum=True,
        convert=float, fuzz=(2.0, 64.0),
        doc="Depth that enters tier 2 (low-priority tenants shed); omit to "
            "never shed.",
    )
    sustain_s: float = spec_field(
        default=10.0, types=(int, float), minimum=0, convert=float,
        fuzz=(0.0, 30.0),
        doc="How long pressure must persist before a tier engages (seconds).",
    )
    recover_s: float = spec_field(
        default=10.0, types=(int, float), minimum=0, convert=float,
        fuzz=(0.0, 30.0),
        doc="How long pressure must stay low before a tier releases (seconds).",
    )
    low_priority_tenants: tuple = spec_field(
        default=(), item_parser=lambda entry, path: _parse_tenant_name(entry, path),
        item_normalizer=lambda entry, path: _parse_tenant_name(entry, path),
        constraint_doc="array of tenant names",
        doc="Tenants shed first in tier 2 (by scenario tenant name).",
    )

    def __spec_validate__(self, path: str) -> None:
        if (self.shed_depth_per_replica is not None
                and self.shed_depth_per_replica < self.depth_per_replica):
            raise ResilienceSpecError(
                f"shed_depth_per_replica ({self.shed_depth_per_replica:g}) must "
                f"be >= depth_per_replica ({self.depth_per_replica:g})",
                path=f"{path}.shed_depth_per_replica",
            )


def _parse_tenant_name(entry, path: str) -> str:
    if not isinstance(entry, str) or not entry:
        raise ResilienceSpecError(
            f"tenant names must be non-empty strings, got {entry!r}", path=path
        )
    return entry


@spec_model(error=ResilienceSpecError, path="resilience", title="resilience")
@dataclass(frozen=True)
class ResilienceSpec:
    """One ``"resilience"`` config block (see ``docs/RESILIENCE.md``)."""

    version: int = spec_field(
        default=1, types=int, doc="Config format version.",
    )
    enabled: bool = spec_field(
        default=True, types=bool,
        doc="Master switch; false applies nothing, byte-identical to omission.",
    )
    seed: int = spec_field(
        default=0, types=int, minimum=0, fuzz=(0, 2**16),
        doc="Base seed the per-request retry-jitter streams derive from.",
    )
    deadline: DeadlineSpec | None = spec_field(
        default=None, model=DeadlineSpec,
        doc="Optional per-request deadlines.",
    )
    retry: RetrySpec | None = spec_field(
        default=None, model=RetrySpec,
        doc="Optional seeded retry/backoff policy for crash-evacuated work.",
    )
    hedge: HedgeSpec | None = spec_field(
        default=None, model=HedgeSpec,
        doc="Optional hedged-request policy.",
    )
    breaker: BreakerSpec | None = spec_field(
        default=None, model=BreakerSpec,
        doc="Optional per-replica circuit breaker (health-aware routing).",
    )
    degrade: DegradationSpec | None = spec_field(
        default=None, model=DegradationSpec,
        doc="Optional degraded-mode (brownout-tier) controller.",
    )


@spec_model(error=ScenarioSpecError, path="tenants[]", title="tenants[]")
@dataclass(frozen=True)
class TenantModel:
    """One tenant of a multi-tenant scenario."""

    name: str = spec_field(
        types=str, doc="Tenant name (reports, user-id prefixes, metadata).",
    )
    workload: str = spec_field(
        types=str, doc="Registered workload name.",
    )
    workload_params: dict = spec_field(
        default={}, types=dict,
        constraint_doc="workload-specific keys",
        doc="Generator parameter overrides (e.g. ``num_users``).",
    )
    weight: float = spec_field(
        default=1.0, types=(int, float), minimum=0, exclusive_minimum=True,
        maximum=1.0, convert=float, fuzz=(0.25, 1.0),
        doc="Fraction of the tenant's generated trace to include, in (0, 1].",
    )
    slo_latency_s: float | None = spec_field(
        default=None, types=(int, float), minimum=0, exclusive_minimum=True,
        convert=float, fuzz=(0.5, 30.0),
        doc="Optional per-tenant latency SLO (seconds).",
    )
    arrival: str = spec_field(
        types=str, doc="Registered arrival-process name.",
    )
    arrival_params: dict = spec_field(
        default={}, types=dict,
        constraint_doc="arrival-specific keys",
        doc="Arrival-process parameters (e.g. ``rate``, ``burst_rate``).",
    )

    def __spec_validate__(self, path: str) -> None:
        if not self.name:
            raise ScenarioSpecError("tenant name must be non-empty",
                                    path=f"{path}.name")


def _parse_tenant(entry, path: str) -> TenantModel:
    return from_dict(TenantModel, entry, path=path)


def _normalize_tenant(entry, path: str) -> dict:
    return normalize(TenantModel, entry, path=path)


@spec_model(error=ScenarioSpecError, path="", title="scenario")
@dataclass(frozen=True)
class ScenarioModel:
    """One scenario document (see ``docs/SCENARIOS.md``)."""

    version: int = spec_field(
        default=1, types=int, doc="Config format version.",
    )
    name: str = spec_field(
        types=str, doc="Scenario name (reports, trace headers).",
    )
    engine: str = spec_field(
        default="prefillonly", types=str,
        doc="Registered engine spec every replica runs.",
    )
    setup: str = spec_field(
        default="h100", types=str,
        doc="Registered hardware setup replicas are provisioned on.",
    )
    replicas: int | None = spec_field(
        default=None, types=int, minimum=1, fuzz=(1, 4),
        doc="Replica count; omit for one replica per GPU of the setup.",
    )
    router: str = spec_field(
        default="user-id", types=str,
        doc="Routing policy (user-id | least-loaded | prefix-affinity).",
    )
    max_queue_depth: int | None = spec_field(
        default=None, types=int, minimum=1, fuzz=(1, 64),
        doc="Optional queue-depth admission control, per replica.",
    )
    autoscale: AutoscaleSpec | None = spec_field(
        default=None, model=AutoscaleSpec,
        doc="Optional reactive autoscaler.",
    )
    seed: int = spec_field(
        default=0, types=int, minimum=0, fuzz=(0, 2**16),
        doc="Master seed every tenant's default streams derive from.",
    )
    max_input_length: int | None = spec_field(
        default=None, types=int, minimum=1,
        doc="MIL override; defaults to the longest generated request.",
    )
    tenants: tuple = spec_field(
        default=(), item_parser=_parse_tenant, item_normalizer=_normalize_tenant,
        constraint_doc="array of tenants (>= 1 to run)",
        doc="The tenants whose mixed streams form the workload.",
    )
    kv_tiers: KVTiersSpec | None = spec_field(
        default=None, model=KVTiersSpec,
        doc="Optional tiered prefix cache (see ``docs/KV_TIERS.md``).",
    )
    faults: FaultsSpec | None = spec_field(
        default=None, model=FaultsSpec,
        doc="Optional chaos schedule (see ``docs/FAULTS.md``).",
    )
    shards: int = spec_field(
        default=1, types=int, minimum=1, fuzz=(1, 4),
        doc="Shard count for the sharded simulation engine "
            "(see ``docs/SHARDING.md``); results are byte-identical on any "
            "value.",
    )
    lookahead: float | None = spec_field(
        default=None, types=(int, float), minimum=0.0, exclusive_minimum=True,
        convert=float,
        doc="Conservative cross-shard lookahead window in simulated seconds; "
            "omit to derive it from the modelled interconnect latency.",
    )
    observability: ObservabilitySpec | None = spec_field(
        default=None, model=ObservabilitySpec,
        doc="Optional tracing & telemetry (see ``docs/OBSERVABILITY.md``).",
    )
    resilience: ResilienceSpec | None = spec_field(
        default=None, model=ResilienceSpec,
        doc="Optional resilience policies (see ``docs/RESILIENCE.md``).",
    )


#: The models whose field tables ``docs/SPEC.md`` is generated from,
#: in document order.
DOCUMENTED_MODELS = (
    ScenarioModel,
    TenantModel,
    AutoscaleSpec,
    ObservabilitySpec,
    AlertRuleSpec,
    ResilienceSpec,
    DeadlineSpec,
    RetrySpec,
    HedgeSpec,
    BreakerSpec,
    DegradationSpec,
    KVTiersSpec,
    HostTierSpec,
    ClusterTierSpec,
    FaultsSpec,
    CrashEventSpec,
    RecoverEventSpec,
    SlowEventSpec,
    BrownoutEventSpec,
    OutageEventSpec,
    SpotPreemptEventSpec,
    GenerateSpec,
)
