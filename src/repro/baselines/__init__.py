"""Baseline engines the paper compares against.

All four baselines are vLLM configurations in the paper and are expressed here
as :class:`~repro.core.engine.EngineSpec` instances running on the same
substrates as PrefillOnly:

* **PagedAttention** — vanilla vLLM: full prefilling, full KV retention,
  first-come-first-served scheduling, prefix caching enabled.
* **Chunked Prefill** — Sarathi-style chunked prefilling; handles longer inputs
  on one GPU at the cost of attention-kernel efficiency.
* **Tensor Parallel** — TP=2 across the instance's two GPUs; halves the
  per-GPU footprint and compute but pays all-reduce communication every layer.
* **Pipeline Parallel** — PP=2; halves per-GPU weights and KV, keeps
  single-request latency, and suffers pipeline bubbles under varying lengths.
"""

from repro.baselines.paged_attention import paged_attention_spec
from repro.baselines.chunked_prefill import chunked_prefill_spec
from repro.baselines.tensor_parallel import tensor_parallel_spec
from repro.baselines.pipeline_parallel import pipeline_parallel_spec
from repro.baselines.registry import baseline_specs, all_engine_specs, get_engine_spec

__all__ = [
    "paged_attention_spec",
    "chunked_prefill_spec",
    "tensor_parallel_spec",
    "pipeline_parallel_spec",
    "baseline_specs",
    "all_engine_specs",
    "get_engine_spec",
]
