"""Tensor parallel baseline (vLLM with TP=2).

The model's weights, KV cache, and activations are sharded across the
instance's GPUs, which roughly halves the per-GPU footprint (highest maximum
input length of the baselines) and halves the per-request compute time — but
every layer pays two all-reduces over the interconnect, which wastes GPU time
and caps throughput, especially without NVLink (Figure 8 of the paper).
"""

from __future__ import annotations

from repro.core.engine import EngineSpec
from repro.kvcache.manager import CommitPolicy
from repro.model.memory import PrefillMode


def tensor_parallel_spec(*, degree: int = 2, enable_prefix_caching: bool = True,
                         kv_block_size: int = 256) -> EngineSpec:
    """Build the tensor parallel baseline spec.

    Args:
        degree: Tensor parallel degree (the paper uses 2).
    """
    return EngineSpec(
        name="tensor-parallel",
        prefill_mode=PrefillMode.FULL,
        scheduling_policy="fcfs",
        commit_policy=CommitPolicy.FULL if enable_prefix_caching else CommitPolicy.NONE,
        reserve_full_kv=True,
        tensor_parallel=degree,
        enable_prefix_caching=enable_prefix_caching,
        kv_block_size=kv_block_size,
        description=f"Tensor parallel (TP={degree}): sharded weights/KV, all-reduce per layer, FCFS",
    )
