"""PagedAttention baseline (vanilla vLLM).

Full prefilling in one forward pass, the KV cache of every layer retained in
the block pool for the whole pass, first-come-first-served scheduling, and
automatic prefix caching — the configuration the paper calls "PagedAttention".
Its maximum input length is limited by having to fit both the full KV cache and
the un-chunked activation spikes of one request in GPU memory.
"""

from __future__ import annotations

from repro.core.engine import EngineSpec
from repro.kvcache.manager import CommitPolicy
from repro.model.memory import PrefillMode


def paged_attention_spec(*, enable_prefix_caching: bool = True,
                         kv_block_size: int = 256) -> EngineSpec:
    """Build the PagedAttention baseline spec."""
    return EngineSpec(
        name="paged-attention",
        prefill_mode=PrefillMode.FULL,
        scheduling_policy="fcfs",
        commit_policy=CommitPolicy.FULL if enable_prefix_caching else CommitPolicy.NONE,
        reserve_full_kv=True,
        enable_prefix_caching=enable_prefix_caching,
        kv_block_size=kv_block_size,
        description="vLLM PagedAttention: full prefilling, full KV retention, FCFS",
    )
