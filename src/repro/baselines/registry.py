"""Registry of engine specs evaluated in the paper (PrefillOnly + 4 baselines)."""

from __future__ import annotations

from repro.baselines.chunked_prefill import chunked_prefill_spec
from repro.baselines.paged_attention import paged_attention_spec
from repro.baselines.pipeline_parallel import pipeline_parallel_spec
from repro.baselines.tensor_parallel import tensor_parallel_spec
from repro.core.engine import EngineSpec, prefillonly_engine_spec
from repro.errors import ConfigurationError

_FACTORIES = {
    "prefillonly": prefillonly_engine_spec,
    "paged-attention": paged_attention_spec,
    "chunked-prefill": chunked_prefill_spec,
    "tensor-parallel": tensor_parallel_spec,
    "pipeline-parallel": pipeline_parallel_spec,
}

#: The order the paper's figures list the engines in.
ENGINE_ORDER = [
    "prefillonly",
    "paged-attention",
    "chunked-prefill",
    "pipeline-parallel",
    "tensor-parallel",
]


def baseline_specs() -> list[EngineSpec]:
    """The four baseline specs, in the paper's presentation order."""
    return [
        paged_attention_spec(),
        chunked_prefill_spec(),
        pipeline_parallel_spec(),
        tensor_parallel_spec(),
    ]


def all_engine_specs() -> list[EngineSpec]:
    """PrefillOnly followed by the four baselines."""
    return [prefillonly_engine_spec(), *baseline_specs()]


def get_engine_spec(name: str, **overrides) -> EngineSpec:
    """Build one engine spec by name, optionally overriding its parameters."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(ENGINE_ORDER)
        raise ConfigurationError(f"unknown engine {name!r}; known engines: {known}") from None
    return factory(**overrides)
