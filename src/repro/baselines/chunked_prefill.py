"""Chunked prefill baseline (Sarathi-Serve-style).

The input is processed chunk-by-chunk through the whole model, which bounds the
activation spikes by the chunk size and therefore raises the maximum input
length — but the KV cache of all layers of all previous chunks must stay
resident between chunks, and splitting the attention computation lowers kernel
efficiency (the paper measures a 14% end-to-end slowdown at a 20,000-token
input with 512-token chunks).
"""

from __future__ import annotations

from repro.core.engine import EngineSpec
from repro.kvcache.manager import CommitPolicy
from repro.model.memory import PrefillMode


def chunked_prefill_spec(*, chunk_tokens: int = 512, enable_prefix_caching: bool = True,
                         kv_block_size: int = 256) -> EngineSpec:
    """Build the chunked prefill baseline spec.

    Args:
        chunk_tokens: Prefill chunk size (the paper's reference uses 512).
    """
    return EngineSpec(
        name="chunked-prefill",
        prefill_mode=PrefillMode.CHUNKED,
        scheduling_policy="fcfs",
        commit_policy=CommitPolicy.FULL if enable_prefix_caching else CommitPolicy.NONE,
        reserve_full_kv=True,
        chunk_tokens=chunk_tokens,
        enable_prefix_caching=enable_prefix_caching,
        kv_block_size=kv_block_size,
        description="Chunked prefill: chunk-by-chunk prefilling, full KV retention, FCFS",
    )
