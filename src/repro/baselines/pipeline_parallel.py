"""Pipeline parallel baseline (vLLM with PP=2).

The model's layers are split into stages, one per GPU; each request flows
through the stages in order, so single-request latency stays close to the
single-GPU case while two requests can overlap — minus the bubbles that appear
when request lengths vary (the simulation's per-stage resources produce exactly
those bubbles).  Per-GPU weights and KV halve, so the maximum input length
grows, but the activations of a full sequence still have to fit in one stage.
"""

from __future__ import annotations

from repro.core.engine import EngineSpec
from repro.kvcache.manager import CommitPolicy
from repro.model.memory import PrefillMode


def pipeline_parallel_spec(*, degree: int = 2, enable_prefix_caching: bool = True,
                           kv_block_size: int = 256) -> EngineSpec:
    """Build the pipeline parallel baseline spec.

    Args:
        degree: Pipeline parallel degree (the paper uses 2).
    """
    return EngineSpec(
        name="pipeline-parallel",
        prefill_mode=PrefillMode.FULL,
        scheduling_policy="fcfs",
        commit_policy=CommitPolicy.FULL if enable_prefix_caching else CommitPolicy.NONE,
        reserve_full_kv=True,
        pipeline_parallel=degree,
        enable_prefix_caching=enable_prefix_caching,
        kv_block_size=kv_block_size,
        description=f"Pipeline parallel (PP={degree}): staged layers, overlapping requests, FCFS",
    )
