"""Deterministic fault schedules: typed chaos events on a simulated timeline.

A :class:`FaultSchedule` is a time-ordered list of :class:`FaultEvent`\\ s that
:func:`repro.simulation.simulator.simulate_fleet` merges into its event loop
(through the same :class:`~repro.simulation.events.EventQueue` machinery the
replicas use) and delivers to :meth:`repro.cluster.fleet.Fleet.apply_fault`.
Schedules come from two places, both fully deterministic:

* a declarative JSON ``"faults"`` block (:func:`fault_schedule_from_dict`) —
  every event names its kind, target, time, and magnitude explicitly;
* a seeded generator (:func:`generate_crash_schedule`) — per-replica
  crash/recover processes with exponential MTBF and MTTR, drawn from
  ``numpy``'s ``default_rng`` seeded per ``(seed, replica)`` so each
  replica's fault stream is independent of every other's draw count.

Config block shape (JSON)::

    "faults": {
      "enabled": true,
      "warm_restore_blocks": 256,        // L3 -> L2 restore budget on rejoin
      "events": [
        {"kind": "crash",    "replica": 0, "at": 120.0, "recover_at": 200.0},
        {"kind": "recover",  "replica": 2, "at": 340.0},
        {"kind": "slow",     "replica": 1, "at": 60.0,  "duration": 30.0,
         "multiplier": 2.5},             // service-time multiplier
        {"kind": "brownout", "at": 100.0, "duration": 50.0,
         "multiplier": 4.0},             // tier transfer-cost multiplier
        {"kind": "outage",   "at": 300.0, "duration": 60.0},  // L3 store down
        {"kind": "spot_preempt", "replica": 3, "at": 400.0,
         "warning_s": 30.0, "recover_at": 520.0}  // preemption with warning
      ],
      "generate": {                      // seeded crash/recover processes
        "mtbf_s": 300.0, "mttr_s": 45.0, "horizon_s": 900.0,
        "seed": 7, "replicas": 4         // replicas defaults to the scenario's
      }
    }

The determinism contract (pinned by tests): the same config always compiles
to the same event list; a chaos run with a fixed scenario seed is
bit-reproducible across processes; and a schedule that is absent, disabled,
or empty leaves every simulation result byte-identical to a run without the
subsystem.

Unknown kinds fail with :class:`~repro.errors.UnknownFaultError` (listing the
valid kinds and the JSON path of the typo); any other malformed key, time,
target, or magnitude fails with :class:`~repro.errors.FaultScheduleError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import FaultScheduleError
from repro.spec.core import from_dict
from repro.spec.models import (
    FAULT_KINDS,
    BrownoutEventSpec,
    CrashEventSpec,
    FaultsSpec,
    OutageEventSpec,
    RecoverEventSpec,
    SlowEventSpec,
    SpotPreemptEventSpec,
)

__all__ = [
    "FAULT_KINDS",
    "DEFAULT_WARM_RESTORE_BLOCKS",
    "FaultEvent",
    "FaultSchedule",
    "ResilienceCounters",
    "fault_schedule_from_dict",
    "fault_schedule_from_model",
    "generate_crash_schedule",
]

#: Default L3 -> L2 warm-restore budget (blocks) applied on replica rejoin.
DEFAULT_WARM_RESTORE_BLOCKS = 256


@dataclass(frozen=True)
class FaultEvent:
    """One primitive fault delivered to the fleet at a simulated time.

    Attributes:
        time: Simulated delivery time (seconds).
        kind: Primitive kind — one of :data:`FAULT_KINDS` plus the compiled
            window closers ``slow-end`` / ``brownout-end`` / ``outage-end``.
        replica: Logical replica id the event targets (crash / recover /
            slow); ``None`` for fleet-wide events (brownout / outage).
        multiplier: Magnitude of ``slow`` (service-time multiplier) and
            ``brownout`` (tier transfer-cost multiplier) events.
        seq: Position in the compiled schedule — the tie-break that makes
            equal-time events fire in a fixed, documented order.
    """

    time: float
    kind: str
    replica: int | None = None
    multiplier: float = 1.0
    seq: int = 0


class FaultSchedule:
    """A compiled, time-ordered fault schedule.

    Args:
        events: The primitive events, in any order; compiled to a tuple
            sorted by ``(time, window-closers first, insertion order)`` with
            ``seq`` rewritten to the sorted position.  Closing a window
            before opening the next at the same instant makes abutting
            windows (one ending exactly when another starts) behave
            correctly regardless of config order; overlapping same-kind
            windows are rejected at config-parse time
            (:func:`fault_schedule_from_dict`) because an inner window's
            close would silently cancel the outer one.
        enabled: Master switch.  A disabled schedule injects nothing and the
            simulator treats it exactly like ``faults=None``.
        warm_restore_blocks: How many of the cluster store's hottest blocks
            a recovering replica stages into its host tier on rejoin
            (0 disables warm restore; tiering must be on for it to matter).
    """

    def __init__(self, events, *, enabled: bool = True,
                 warm_restore_blocks: int = DEFAULT_WARM_RESTORE_BLOCKS) -> None:
        if warm_restore_blocks < 0:
            raise FaultScheduleError(
                f"warm_restore_blocks must be non-negative, got {warm_restore_blocks}",
                path="faults.warm_restore_blocks",
            )
        ordered = sorted(
            enumerate(events),
            key=lambda pair: (
                pair[1].time, 0 if pair[1].kind.endswith("-end") else 1, pair[0]
            ),
        )
        self.events: tuple[FaultEvent, ...] = tuple(
            FaultEvent(time=event.time, kind=event.kind, replica=event.replica,
                       multiplier=event.multiplier, seq=seq)
            for seq, (_, event) in enumerate(ordered)
        )
        self.enabled = enabled
        self.warm_restore_blocks = warm_restore_blocks

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def active(self) -> bool:
        """True when the schedule will actually inject something."""
        return self.enabled and bool(self.events)


@dataclass
class ResilienceCounters:
    """Mutable fault/recovery bookkeeping a :class:`~repro.cluster.Fleet` keeps.

    Summarised into a frozen
    :class:`~repro.simulation.metrics.ResilienceSummary` at the end of a run;
    all zeros (and therefore invisible) when no fault was ever injected.
    """

    num_faults_applied: int = 0
    num_faults_skipped: int = 0
    num_crashes: int = 0
    num_recoveries: int = 0
    num_slow_events: int = 0
    num_brownouts: int = 0
    num_outages: int = 0
    num_retried: int = 0
    num_lost_in_flight: int = 0
    lost_work_tokens: int = 0
    lost_kv_tokens: int = 0
    num_unserved: int = 0
    warm_restored_blocks: int = 0
    num_preemptions: int = 0
    # Resilience-policy outcomes (repro.resilience); all zero with policies off.
    num_deadline_missed: int = 0
    num_hedges: int = 0
    num_hedge_wins: int = 0
    hedge_wasted_tokens: int = 0
    num_retry_exhausted: int = 0
    num_breaker_opens: int = 0
    num_breaker_closes: int = 0
    num_degrade_sheds: int = 0
    degraded_seconds: float = 0.0
    #: Crash-to-recover durations of every completed repair, in event order.
    mttr_samples: list[float] = field(default_factory=list)


def _compile_event(model) -> list[FaultEvent]:
    """Compile one parsed event model into its primitive :class:`FaultEvent`\\ s.

    Windowed kinds emit a start plus a paired ``*-end`` closer at
    ``at + duration``; a ``crash`` with ``recover_at`` emits its repair too.
    """
    if isinstance(model, CrashEventSpec):
        events = [FaultEvent(time=model.at, kind="crash", replica=model.replica)]
        if model.recover_at is not None:
            events.append(
                FaultEvent(time=model.recover_at, kind="recover",
                           replica=model.replica)
            )
        return events
    if isinstance(model, RecoverEventSpec):
        return [FaultEvent(time=model.at, kind="recover", replica=model.replica)]
    if isinstance(model, SlowEventSpec):
        return [
            FaultEvent(time=model.at, kind="slow", replica=model.replica,
                       multiplier=model.multiplier),
            FaultEvent(time=model.at + model.duration, kind="slow-end",
                       replica=model.replica),
        ]
    if isinstance(model, BrownoutEventSpec):
        return [
            FaultEvent(time=model.at, kind="brownout", multiplier=model.multiplier),
            FaultEvent(time=model.at + model.duration, kind="brownout-end"),
        ]
    if isinstance(model, SpotPreemptEventSpec):
        events = [
            FaultEvent(time=model.at, kind="spot_preempt", replica=model.replica),
            FaultEvent(time=model.at + model.warning_s, kind="spot_preempt-kill",
                       replica=model.replica),
        ]
        if model.recover_at is not None:
            events.append(
                FaultEvent(time=model.recover_at, kind="recover",
                           replica=model.replica)
            )
        return events
    assert isinstance(model, OutageEventSpec)
    return [
        FaultEvent(time=model.at, kind="outage"),
        FaultEvent(time=model.at + model.duration, kind="outage-end"),
    ]


def generate_crash_schedule(*, num_replicas: int, mtbf_s: float, mttr_s: float,
                            horizon_s: float, seed: int = 0,
                            warm_restore_blocks: int = DEFAULT_WARM_RESTORE_BLOCKS,
                            ) -> FaultSchedule:
    """Seeded per-replica crash/recover processes with exponential MTBF/MTTR.

    Each replica draws its own stream from ``default_rng([seed, replica])``,
    so one replica's fault count never perturbs another's timeline and the
    whole schedule is a pure function of its arguments.  Crashes whose repair
    would land past ``horizon_s`` stay down for the rest of the run.
    """
    if num_replicas < 1:
        raise FaultScheduleError(
            f"generate needs at least one replica, got {num_replicas}",
            path="faults.generate.replicas",
        )
    if mtbf_s <= 0 or mttr_s <= 0 or horizon_s <= 0:
        raise FaultScheduleError(
            "mtbf_s, mttr_s, and horizon_s must all be positive",
            path="faults.generate",
        )
    events: list[FaultEvent] = []
    for replica in range(num_replicas):
        rng = np.random.default_rng([seed, replica])
        clock = float(rng.exponential(mtbf_s))
        while clock < horizon_s:
            events.append(FaultEvent(time=clock, kind="crash", replica=replica))
            repaired = clock + float(rng.exponential(mttr_s))
            if repaired >= horizon_s:
                break
            events.append(FaultEvent(time=repaired, kind="recover", replica=replica))
            clock = repaired + float(rng.exponential(mtbf_s))
    return FaultSchedule(events, warm_restore_blocks=warm_restore_blocks)


def fault_schedule_from_dict(config: dict, *, path: str = "faults",
                             default_replicas: int | None = None) -> FaultSchedule:
    """Parse a ``"faults"`` JSON block into a :class:`FaultSchedule`.

    Args:
        config: The decoded JSON object (see the module docstring for the
            shape).  ``events`` and ``generate`` compose: generated
            crash/recover processes merge with the explicit event list.
        path: Dotted path of the block inside the surrounding document, used
            to point error messages at the offending key.
        default_replicas: Replica count ``generate`` falls back to when it
            does not name its own (the scenario engine passes the scenario's).

    Raises:
        UnknownFaultError: if an event uses a kind that does not exist (the
            message lists the valid kinds).
        FaultScheduleError: on any other malformed key, time, target, or
            magnitude.
    """
    model = from_dict(FaultsSpec, config, path=path)
    return fault_schedule_from_model(
        model, path=path, default_replicas=default_replicas
    )


def fault_schedule_from_model(model: FaultsSpec, *, path: str = "faults",
                              default_replicas: int | None = None) -> FaultSchedule:
    """Compile a parsed :class:`~repro.spec.models.FaultsSpec` into a schedule.

    The service half of the model/service split: the spec layer has already
    validated shape, types, ranges, and per-event cross-field rules; this
    function owns the *schedule* semantics — window compilation, the
    same-kind overlap rule, and merging the seeded generator's events.
    """
    events: list[FaultEvent] = []
    windows: dict[tuple, list[tuple[float, float, int]]] = {}
    for index, entry in enumerate(model.events):
        compiled = _compile_event(entry)
        events.extend(compiled)
        if len(compiled) == 2 and compiled[1].kind.endswith("-end"):
            start, end = compiled
            windows.setdefault((start.kind, start.replica), []).append(
                (start.time, end.time, index)
            )
    # Same-kind windows (same replica for "slow") must not overlap: the
    # earlier window's end event would silently cancel the later window.
    # Abutting windows (one ending exactly when the next starts) are fine —
    # the schedule fires window closers before openers at equal times.
    for (kind, replica), spans in windows.items():
        spans.sort()
        for (s1, e1, i1), (s2, _, i2) in zip(spans, spans[1:]):
            if s2 < e1:
                target = f" on replica {replica}" if replica is not None else ""
                raise FaultScheduleError(
                    f"overlapping {kind!r} windows{target}: events[{i1}] covers "
                    f"[{s1:g}, {e1:g}) and events[{i2}] starts at {s2:g} — "
                    "the first window's end would cancel the second",
                    path=f"{path}.events",
                )

    if model.generate is not None:
        replicas = model.generate.replicas
        if replicas is None:
            replicas = default_replicas
        if replicas is None:
            raise FaultScheduleError(
                "generate needs 'replicas' (or a surrounding scenario that "
                "sets a replica count)", path=f"{path}.generate.replicas",
            )
        generated = generate_crash_schedule(
            num_replicas=replicas,
            mtbf_s=model.generate.mtbf_s,
            mttr_s=model.generate.mttr_s,
            horizon_s=model.generate.horizon_s,
            seed=model.generate.seed,
        )
        events.extend(generated.events)

    return FaultSchedule(
        events, enabled=model.enabled,
        warm_restore_blocks=model.warm_restore_blocks,
    )
