"""Fault injection & resilience: deterministic chaos for fleet simulations.

This package owns the *what* and *when* of failure — typed
:class:`FaultEvent`\\ s (replica crash, recovery/rejoin, slow-node
degradation, interconnect brownout, cluster-store outage, spot preemption
with a drain warning) compiled into a
deterministic :class:`FaultSchedule` from a JSON ``"faults"`` block or from
seeded exponential MTBF/MTTR processes.  The *how* lives where the state is:
:meth:`repro.cluster.fleet.Fleet.apply_fault` executes the failure lifecycle
(evacuate + re-route queued and in-flight requests, drop the crashed
replica's radix tree, rebuild and warm-restore on rejoin), and
:func:`repro.simulation.simulator.simulate_fleet` merges the schedule into
its event loop.  Resilience accounting flows through
:class:`~repro.simulation.metrics.ResilienceSummary`.

The standing invariant, pinned by tests: with faults absent or disabled,
every simulation result is byte-identical to a build without this package;
with a fixed seed, chaos runs are bit-reproducible across processes.

See ``docs/FAULTS.md`` for the fault model, the JSON schema, and the
determinism contract.
"""

from repro.faults.schedule import (
    DEFAULT_WARM_RESTORE_BLOCKS,
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    ResilienceCounters,
    fault_schedule_from_dict,
    fault_schedule_from_model,
    generate_crash_schedule,
)

__all__ = [
    "DEFAULT_WARM_RESTORE_BLOCKS",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "ResilienceCounters",
    "fault_schedule_from_dict",
    "fault_schedule_from_model",
    "generate_crash_schedule",
]
