"""Frontend-to-scheduler message boundary (the ZeroMQ stand-in).

In the paper, the HTTP frontend tokenizes each request and ships it to the
scheduler process over ZeroMQ; the score travels back the same way.  The exact
transport is irrelevant to the system's behaviour, but the *boundary* matters:
whatever crosses it must be serialisable, and the scheduler only ever sees
token ids (never prompt text).  This module encodes that boundary as two
dataclasses with dict round-tripping, plus a minimal in-process channel used by
the frontend and exercised by the tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ReproError


class RPCError(ReproError):
    """A message could not be encoded, decoded, or delivered."""


@dataclass(frozen=True)
class SubmitRequest:
    """Frontend -> scheduler: a tokenized prefill-only request."""

    request_id: str
    user_id: str
    token_ids: tuple[int, ...]
    allowed_outputs: tuple[str, ...]
    arrival_time: float = 0.0

    def to_dict(self) -> dict:
        return {
            "type": "submit",
            "request_id": self.request_id,
            "user_id": self.user_id,
            "token_ids": list(self.token_ids),
            "allowed_outputs": list(self.allowed_outputs),
            "arrival_time": self.arrival_time,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SubmitRequest":
        if payload.get("type") != "submit":
            raise RPCError(f"expected a submit message, got {payload.get('type')!r}")
        return cls(
            request_id=payload["request_id"],
            user_id=payload["user_id"],
            token_ids=tuple(payload["token_ids"]),
            allowed_outputs=tuple(payload["allowed_outputs"]),
            arrival_time=payload.get("arrival_time", 0.0),
        )


@dataclass(frozen=True)
class ScoreReply:
    """Scheduler -> frontend: the prefill-only probability scores."""

    request_id: str
    probabilities: tuple[tuple[str, float], ...]
    prompt_tokens: int
    cached_prompt_tokens: int = 0
    latency_seconds: float = 0.0

    def to_dict(self) -> dict:
        return {
            "type": "score",
            "request_id": self.request_id,
            "probabilities": [[token, probability] for token, probability in self.probabilities],
            "prompt_tokens": self.prompt_tokens,
            "cached_prompt_tokens": self.cached_prompt_tokens,
            "latency_seconds": self.latency_seconds,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScoreReply":
        if payload.get("type") != "score":
            raise RPCError(f"expected a score message, got {payload.get('type')!r}")
        return cls(
            request_id=payload["request_id"],
            probabilities=tuple((token, float(p)) for token, p in payload["probabilities"]),
            prompt_tokens=int(payload["prompt_tokens"]),
            cached_prompt_tokens=int(payload.get("cached_prompt_tokens", 0)),
            latency_seconds=float(payload.get("latency_seconds", 0.0)),
        )


@dataclass
class InProcessChannel:
    """A FIFO message channel standing in for the ZeroMQ socket pair.

    Messages are stored as plain dicts (forcing both sides through the
    serialisation boundary), delivered in order, and counted.
    """

    _queue: deque = field(default_factory=deque)
    sent: int = 0
    received: int = 0

    def send(self, message: SubmitRequest | ScoreReply) -> None:
        self._queue.append(message.to_dict())
        self.sent += 1

    def receive(self) -> dict:
        if not self._queue:
            raise RPCError("receive() on an empty channel")
        self.received += 1
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)
