"""Serving frontend: the OpenAI-compatible request path of §3.1.

The paper's engine "opens an HTTP server compatible with the OpenAI API
protocol"; the frontend tokenizes each request and ships it over a ZeroMQ RPC
boundary to the scheduler process, and the prefill-only probability score flows
back the same way.  This package reproduces that request path in-process:

* :mod:`repro.frontend.api` — the request/response schema (a prefill-only
  subset of the OpenAI completions API, including the constrained-output list);
* :mod:`repro.frontend.rpc` — the frontend/scheduler message boundary as
  serialisable dataclasses over an in-process channel (the ZeroMQ stand-in);
* :mod:`repro.frontend.server` — the frontend itself: validation, tokenization,
  dispatch to a scoring backend, and OpenAI-shaped responses.  The default
  backend scores with the NumPy micro-transformer via hybrid prefilling, so the
  functional contract (P(Yes)/P(No) per request) is exercised end to end; the
  performance path is the discrete-event simulator in :mod:`repro.simulation`.
"""

from repro.frontend.api import (
    CompletionChoice,
    CompletionRequest,
    CompletionResponse,
    TokenProbability,
    UsageInfo,
    parse_completion_request,
)
from repro.frontend.rpc import InProcessChannel, ScoreReply, SubmitRequest
from repro.frontend.server import (
    FleetBackend,
    MicroModelBackend,
    PrefillOnlyFrontend,
    ScoringBackend,
)

__all__ = [
    "CompletionChoice",
    "CompletionRequest",
    "CompletionResponse",
    "TokenProbability",
    "UsageInfo",
    "parse_completion_request",
    "InProcessChannel",
    "ScoreReply",
    "SubmitRequest",
    "FleetBackend",
    "MicroModelBackend",
    "PrefillOnlyFrontend",
    "ScoringBackend",
]
