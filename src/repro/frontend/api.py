"""Request/response schema of the prefill-only serving API.

A prefill-only deployment only needs a small subset of the OpenAI completions
API: a prompt, a user identifier (for user-id routing), and the list of
acceptable output tokens the engine may sample from (§2.3's "pass a list of
acceptable tokens to the LLM engine").  ``max_tokens`` is accepted for protocol
compatibility but must be 1 — that is the definition of the workload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ReproError


class APIValidationError(ReproError):
    """The request payload violates the prefill-only API contract."""


@dataclass(frozen=True)
class CompletionRequest:
    """One prefill-only completion request.

    Attributes:
        prompt: The full prompt text.
        allowed_outputs: Output vocabulary the engine may sample from, e.g.
            ``("Yes", "No")``.  Must contain at least two options.
        user: Caller-provided user identifier, used for user-id routing and for
            prefix-cache affinity.
        model: Model name (informational; the deployment serves one model).
        max_tokens: Must be 1 (prefill-only).
        request_id: Optional caller-assigned identifier echoed in the response.
    """

    prompt: str
    allowed_outputs: tuple[str, ...] = ("Yes", "No")
    user: str = "default"
    model: str = "prefillonly"
    max_tokens: int = 1
    request_id: str | None = None

    def __post_init__(self) -> None:
        if not self.prompt:
            raise APIValidationError("prompt must not be empty")
        if self.max_tokens != 1:
            raise APIValidationError(
                f"prefill-only requests generate exactly one token, got max_tokens={self.max_tokens}"
            )
        if len(self.allowed_outputs) < 2:
            raise APIValidationError("allowed_outputs needs at least two options")
        if len(set(self.allowed_outputs)) != len(self.allowed_outputs):
            raise APIValidationError("allowed_outputs must not contain duplicates")


def parse_completion_request(payload: dict) -> CompletionRequest:
    """Parse a JSON-style payload into a :class:`CompletionRequest`.

    Accepts both this API's native field names and the closest OpenAI
    equivalents (``allowed_outputs`` may also arrive as ``logit_bias_tokens``).
    """
    if not isinstance(payload, dict):
        raise APIValidationError("request payload must be a JSON object")
    unknown = set(payload) - {
        "prompt", "allowed_outputs", "logit_bias_tokens", "user", "model",
        "max_tokens", "request_id",
    }
    if unknown:
        raise APIValidationError(f"unknown fields in request payload: {sorted(unknown)}")
    allowed = payload.get("allowed_outputs", payload.get("logit_bias_tokens", ("Yes", "No")))
    if isinstance(allowed, list):
        allowed = tuple(allowed)
    return CompletionRequest(
        prompt=payload.get("prompt", ""),
        allowed_outputs=allowed,
        user=payload.get("user", "default"),
        model=payload.get("model", "prefillonly"),
        max_tokens=payload.get("max_tokens", 1),
        request_id=payload.get("request_id"),
    )


@dataclass(frozen=True)
class TokenProbability:
    """Probability of one allowed output token."""

    token: str
    probability: float


@dataclass(frozen=True)
class UsageInfo:
    """Token accounting of one request (OpenAI ``usage`` block)."""

    prompt_tokens: int
    completion_tokens: int = 1

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


@dataclass(frozen=True)
class CompletionChoice:
    """The single choice of a prefill-only completion."""

    text: str
    probabilities: tuple[TokenProbability, ...]
    finish_reason: str = "stop"

    def probability_of(self, token: str) -> float:
        for entry in self.probabilities:
            if entry.token == token:
                return entry.probability
        raise KeyError(f"token {token!r} was not among the allowed outputs")


@dataclass(frozen=True)
class CompletionResponse:
    """OpenAI-shaped response of one prefill-only completion."""

    request_id: str
    model: str
    choice: CompletionChoice
    usage: UsageInfo
    cached_prompt_tokens: int = 0
    latency_seconds: float = 0.0
    metadata: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Serialise to a JSON-compatible dict (the HTTP body)."""
        return {
            "id": self.request_id,
            "object": "text_completion",
            "model": self.model,
            "choices": [{
                "index": 0,
                "text": self.choice.text,
                "finish_reason": self.choice.finish_reason,
                "logprobs": {
                    "top_logprobs": [{
                        entry.token: entry.probability
                        for entry in self.choice.probabilities
                    }],
                },
            }],
            "usage": {
                "prompt_tokens": self.usage.prompt_tokens,
                "completion_tokens": self.usage.completion_tokens,
                "total_tokens": self.usage.total_tokens,
            },
            "prefillonly": {
                "cached_prompt_tokens": self.cached_prompt_tokens,
                "latency_seconds": round(self.latency_seconds, 6),
            },
        }

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)
