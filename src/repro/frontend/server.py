"""The frontend itself: validation, tokenization, dispatch, response shaping.

:class:`PrefillOnlyFrontend` is the in-process equivalent of the paper's HTTP
server: it parses an OpenAI-style payload, tokenizes the prompt, pushes a
:class:`~repro.frontend.rpc.SubmitRequest` across the RPC boundary, lets a
scoring backend produce the constrained-output probabilities, and wraps the
result into an OpenAI-shaped :class:`~repro.frontend.api.CompletionResponse`.

Three backends are provided:

* :class:`MicroModelBackend` — scores with the NumPy micro-transformer using
  hybrid prefilling and a per-user prefix cache of hidden-state prefixes at
  block granularity, so repeated prompts from the same user report cache hits
  exactly as the full engine would (functional path);
* :class:`FleetBackend` — a fleet adapter that routes each request across N
  replica backends with a :class:`~repro.simulation.routing.Router` (user-id
  by default), mirroring how :class:`~repro.cluster.fleet.Fleet` spreads
  users across engine replicas;
* any object implementing :class:`ScoringBackend` — e.g. a test double, or an
  adapter that forwards to a real engine.
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass

from repro.frontend.api import (
    CompletionChoice,
    CompletionRequest,
    CompletionResponse,
    TokenProbability,
    UsageInfo,
    parse_completion_request,
)
from repro.frontend.rpc import InProcessChannel, ScoreReply, SubmitRequest
from repro.execution.chunked_linear import ChunkedExecutionOptions
from repro.execution.numeric import MicroTransformer, MicroTransformerConfig
from repro.simulation.routing import Router, UserIdRouter
from repro.workloads.tokenizer import SyntheticTokenizer
from repro.workloads.trace import Request, TokenSegment, TokenSequence


class ScoringBackend(abc.ABC):
    """Turns a tokenized submit message into constrained-output scores."""

    @abc.abstractmethod
    def score(self, request: SubmitRequest) -> ScoreReply:
        """Score one request (must preserve ``request_id``)."""


@dataclass
class _CachedPrefix:
    """Per-user record of the longest previously seen token prefix."""

    token_ids: tuple[int, ...]


class MicroModelBackend(ScoringBackend):
    """Scores requests with the NumPy micro-transformer via hybrid prefilling.

    The backend keeps, per user, the token ids of the longest prompt seen so
    far and reports the block-aligned shared prefix of each new request as
    ``cached_prompt_tokens`` — the same accounting the engine's prefix cache
    performs, so applications can observe cache behaviour through the API.
    """

    def __init__(self, *, seed: int = 0, block_size: int = 64,
                 config: MicroTransformerConfig | None = None,
                 chunk_tokens: int = 128) -> None:
        self._model = MicroTransformer(config or MicroTransformerConfig(), seed=seed)
        self._tokenizer_vocab = self._model.config.vocab_size
        self._block_size = block_size
        self._chunk_tokens = chunk_tokens
        self._prefixes: dict[str, _CachedPrefix] = {}

    def _output_token_id(self, output: str) -> int:
        # Deterministically map an output string (e.g. "Yes") to a token id.
        value = 0
        for byte in output.encode("utf-8"):
            value = (value * 131 + byte) % self._tokenizer_vocab
        return value

    def _shared_prefix_tokens(self, user_id: str, token_ids: tuple[int, ...]) -> int:
        record = self._prefixes.get(user_id)
        if record is None:
            return 0
        shared = 0
        for mine, theirs in zip(token_ids, record.token_ids):
            if mine != theirs:
                break
            shared += 1
        return (shared // self._block_size) * self._block_size

    def score(self, request: SubmitRequest) -> ScoreReply:
        cached = self._shared_prefix_tokens(request.user_id, request.token_ids)
        result = self._model.prefill_hybrid(
            list(request.token_ids),
            options=ChunkedExecutionOptions(chunk_tokens=self._chunk_tokens),
        )
        token_ids = {output: self._output_token_id(output) for output in request.allowed_outputs}
        probabilities = result.constrained_probabilities(list(token_ids.values()))
        by_output = tuple(
            (output, probabilities[token_id]) for output, token_id in token_ids.items()
        )
        previous = self._prefixes.get(request.user_id)
        if previous is None or len(request.token_ids) > len(previous.token_ids):
            self._prefixes[request.user_id] = _CachedPrefix(token_ids=request.token_ids)
        return ScoreReply(
            request_id=request.request_id,
            probabilities=by_output,
            prompt_tokens=len(request.token_ids),
            cached_prompt_tokens=cached,
        )


class FleetBackend(ScoringBackend):
    """Routes scoring requests across N replica backends, fleet-style.

    The adapter gives :class:`PrefillOnlyFrontend` the same deployment shape
    the simulation fleet has: N independent scoring replicas, each with its
    own per-user prefix cache, behind a routing policy.  Because the default
    router is the paper's :class:`~repro.simulation.routing.UserIdRouter`, a
    user's repeated prompts land on the same replica and keep reporting cache
    hits, exactly as with a single backend — while different users spread
    across replicas.

    Args:
        num_replicas: Number of scoring replicas.
        router: Routing policy over replica indices; queue depths are modelled
            as each replica's in-flight-free served count so load-based
            routers balance total work.  Defaults to user-id routing.
        backend_factory: Called with the replica index to build each replica;
            defaults to :class:`MicroModelBackend` seeded with the index so
            replicas are distinguishable but deterministic.
    """

    def __init__(self, num_replicas: int = 2, *, router: Router | None = None,
                 backend_factory=None) -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be at least 1")
        if backend_factory is None:
            backend_factory = lambda index: MicroModelBackend(seed=index)  # noqa: E731
        self._replicas: list[ScoringBackend] = [
            backend_factory(index) for index in range(num_replicas)
        ]
        self._router = router if router is not None else UserIdRouter(num_replicas)
        self._served_per_replica = [0] * num_replicas
        self._route_seq = itertools.count()

    @property
    def num_replicas(self) -> int:
        return len(self._replicas)

    @property
    def served_per_replica(self) -> list[int]:
        """Requests served by each replica so far (router load signal)."""
        return list(self._served_per_replica)

    def _as_trace_request(self, request: SubmitRequest) -> Request:
        # Routers operate on trace-level Request objects; a frontend prompt
        # becomes a single segment whose content id is the token content, so
        # identical prompts share block hashes.
        return Request(
            request_id=next(self._route_seq),
            user_id=request.user_id,
            sequence=TokenSequence([
                TokenSegment(
                    content_id=hash(request.token_ids),
                    length=max(len(request.token_ids), 1),
                )
            ]),
            allowed_outputs=request.allowed_outputs,
        )

    def score(self, request: SubmitRequest) -> ScoreReply:
        """Route one request to its replica and return that replica's reply."""
        index = self._router.route(
            self._as_trace_request(request), list(self._served_per_replica)
        )
        reply = self._replicas[index].score(request)
        self._served_per_replica[index] += 1
        return reply


class PrefillOnlyFrontend:
    """In-process OpenAI-compatible frontend for prefill-only requests.

    Args:
        backend: Scoring backend (defaults to the micro-transformer).
        tokenizer: Prompt tokenizer (defaults to the synthetic tokenizer with
            the backend's vocabulary size when the default backend is used).
        model_name: Name echoed in responses.
    """

    def __init__(self, backend: ScoringBackend | None = None,
                 tokenizer: SyntheticTokenizer | None = None,
                 model_name: str = "prefillonly-micro") -> None:
        self._backend = backend if backend is not None else MicroModelBackend()
        if tokenizer is not None:
            self._tokenizer = tokenizer
        else:
            # Match the tokenizer's id space to the scoring model's vocabulary
            # (looking through a FleetBackend at its first replica).
            probe = self._backend
            if isinstance(probe, FleetBackend):
                probe = probe._replicas[0]
            if isinstance(probe, MicroModelBackend):
                self._tokenizer = SyntheticTokenizer(vocab_size=probe._model.config.vocab_size)
            else:
                self._tokenizer = SyntheticTokenizer()
        self._model_name = model_name
        self._channel = InProcessChannel()
        self._id_counter = itertools.count()
        self._requests_served = 0

    @property
    def requests_served(self) -> int:
        return self._requests_served

    @property
    def channel(self) -> InProcessChannel:
        """The frontend/scheduler message channel (exposed for inspection)."""
        return self._channel

    # ------------------------------------------------------------- handlers

    def handle_completion(self, payload: dict) -> dict:
        """Handle one ``/v1/completions``-style payload and return the response body."""
        request = parse_completion_request(payload)
        response = self.complete(request)
        return response.to_dict()

    def complete(self, request: CompletionRequest) -> CompletionResponse:
        """Typed entry point: score one :class:`CompletionRequest`."""
        request_id = request.request_id or f"prefillonly-{next(self._id_counter)}"
        token_ids = tuple(self._tokenizer.encode(request.prompt))

        submit = SubmitRequest(
            request_id=request_id,
            user_id=request.user,
            token_ids=token_ids,
            allowed_outputs=request.allowed_outputs,
        )
        # Cross the serialisation boundary exactly as the ZeroMQ deployment would.
        self._channel.send(submit)
        wire_message = self._channel.receive()
        reply = self._backend.score(SubmitRequest.from_dict(wire_message))

        probabilities = tuple(
            TokenProbability(token=token, probability=probability)
            for token, probability in reply.probabilities
        )
        best = max(probabilities, key=lambda entry: entry.probability)
        self._requests_served += 1
        return CompletionResponse(
            request_id=reply.request_id,
            model=self._model_name,
            choice=CompletionChoice(text=best.token, probabilities=probabilities),
            usage=UsageInfo(prompt_tokens=reply.prompt_tokens),
            cached_prompt_tokens=reply.cached_prompt_tokens,
            latency_seconds=reply.latency_seconds,
        )

    def score(self, prompt: str, *, allowed_outputs: tuple[str, ...] = ("Yes", "No"),
              user: str = "default") -> dict[str, float]:
        """Convenience wrapper: return {output: probability} for one prompt."""
        response = self.complete(CompletionRequest(
            prompt=prompt, allowed_outputs=allowed_outputs, user=user,
        ))
        return {entry.token: entry.probability for entry in response.choice.probabilities}
