"""GPU device specifications.

Each :class:`GPUSpec` carries the published numbers for the devices used in the
paper's evaluation (Table 3): memory capacity, memory bandwidth, and dense
matmul throughput for 16-bit and 8-bit operands.  The ``model_flops_utilization``
field is the sustained fraction of peak throughput a well-tuned inference
engine achieves on large prefills; it is the only calibration constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import gbps, gib, tflops


@dataclass(frozen=True)
class GPUSpec:
    """Specification of a single GPU device.

    Attributes:
        name: Registry key (``"l4"``, ``"a100-40gb"``, ``"h100-80gb"``).
        display_name: Marketing name used in reports.
        memory_bytes: HBM/GDDR capacity in bytes.
        memory_bandwidth: Sustained memory bandwidth in bytes/s.
        bf16_flops: Dense bf16 throughput in FLOP/s (no sparsity).
        fp8_flops: Dense fp8 throughput in FLOP/s (no sparsity).
        model_flops_utilization: Fraction of peak sustained during prefill.
        kernel_launch_overhead: Fixed per-forward-pass overhead in seconds.
    """

    name: str
    display_name: str
    memory_bytes: int
    memory_bandwidth: float
    bf16_flops: float
    fp8_flops: float
    model_flops_utilization: float = 0.55
    kernel_launch_overhead: float = 0.004

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ConfigurationError(f"GPU {self.name!r} has non-positive memory")
        if not 0.0 < self.model_flops_utilization <= 1.0:
            raise ConfigurationError(
                f"GPU {self.name!r}: model_flops_utilization must be in (0, 1]"
            )

    def matmul_flops(self, bytes_per_weight: float) -> float:
        """Peak dense throughput for the given weight precision.

        Models quantised (FP8) weights as using the FP8 tensor-core path and
        16-bit weights as using the bf16 path.
        """
        return self.fp8_flops if bytes_per_weight <= 1.0 else self.bf16_flops

    def sustained_flops(self, bytes_per_weight: float) -> float:
        """Sustained throughput after applying the utilisation factor."""
        return self.matmul_flops(bytes_per_weight) * self.model_flops_utilization

    def describe(self) -> dict:
        """Plain-dict summary used by reports and the CLI."""
        return {
            "name": self.name,
            "display_name": self.display_name,
            "memory_gib": round(self.memory_bytes / (1 << 30), 1),
            "memory_bandwidth_gbps": round(self.memory_bandwidth / 1e9, 1),
            "bf16_tflops": round(self.bf16_flops / 1e12, 1),
            "fp8_tflops": round(self.fp8_flops / 1e12, 1),
        }


L4 = GPUSpec(
    name="l4",
    display_name="NVIDIA L4 (24 GB)",
    memory_bytes=gib(24),
    memory_bandwidth=gbps(300),
    bf16_flops=tflops(121),
    fp8_flops=tflops(242),
)

A100_40GB = GPUSpec(
    name="a100-40gb",
    display_name="NVIDIA A100 PCIe (40 GB)",
    memory_bytes=gib(40),
    memory_bandwidth=gbps(1555),
    bf16_flops=tflops(312),
    # A100 has no FP8 tensor cores; FP8-quantised weights are upcast and run at
    # the INT8/bf16 rate, so reuse the bf16 number.
    fp8_flops=tflops(312),
)

H100_80GB = GPUSpec(
    name="h100-80gb",
    display_name="NVIDIA H100 PCIe (80 GB)",
    memory_bytes=gib(80),
    memory_bandwidth=gbps(2000),
    bf16_flops=tflops(756),
    fp8_flops=tflops(1513),
)

GPU_REGISTRY: dict[str, GPUSpec] = {gpu.name: gpu for gpu in (L4, A100_40GB, H100_80GB)}


def get_gpu(name: str) -> GPUSpec:
    """Look up a registered GPU by name.

    Raises:
        ConfigurationError: if the name is not registered.
    """
    try:
        return GPU_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(GPU_REGISTRY))
        raise ConfigurationError(f"unknown GPU {name!r}; known GPUs: {known}") from None


def list_gpus() -> list[str]:
    """Return the registered GPU names in sorted order."""
    return sorted(GPU_REGISTRY)
