"""Hardware substrate: GPU specifications, interconnects, and cluster descriptions.

The paper evaluates on 2x NVIDIA L4, 2x A100 40GB PCIe, and 2x H100 80GB with
and without NVLink.  This package models those devices with their published
memory capacity, memory bandwidth, compute throughput, and interconnect
bandwidth, which is all the serving simulator needs to reproduce the paper's
latency / throughput / capacity trade-offs.
"""

from repro.hardware.gpu import GPUSpec, GPU_REGISTRY, get_gpu, list_gpus, L4, A100_40GB, H100_80GB
from repro.hardware.interconnect import Interconnect, PCIE_GEN4, NVLINK, allreduce_time, point_to_point_time
from repro.hardware.cluster import ClusterSpec, HardwareSetup, HARDWARE_SETUPS, get_hardware_setup, list_hardware_setups

__all__ = [
    "GPUSpec",
    "GPU_REGISTRY",
    "get_gpu",
    "list_gpus",
    "L4",
    "A100_40GB",
    "H100_80GB",
    "Interconnect",
    "PCIE_GEN4",
    "NVLINK",
    "allreduce_time",
    "point_to_point_time",
    "ClusterSpec",
    "HardwareSetup",
    "HARDWARE_SETUPS",
    "get_hardware_setup",
    "list_hardware_setups",
]
