"""Cluster descriptions: how many GPUs of what kind, connected how.

A :class:`ClusterSpec` is the hardware half of an experiment configuration.
The four :class:`HardwareSetup` records mirror Table 3 of the paper, pairing
each cluster with the LLM model evaluated on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.gpu import GPUSpec, A100_40GB, H100_80GB, L4, get_gpu
from repro.hardware.interconnect import Interconnect, NVLINK, PCIE_GEN4, get_interconnect


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous group of GPUs available to one experiment.

    Attributes:
        gpu: Device specification of every GPU in the cluster.
        num_gpus: Number of GPUs.
        interconnect: GPU-to-GPU link used for tensor/pipeline parallelism.
    """

    gpu: GPUSpec
    num_gpus: int
    interconnect: Interconnect

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ConfigurationError("a cluster needs at least one GPU")

    @property
    def total_memory_bytes(self) -> int:
        """Aggregate GPU memory across the cluster."""
        return self.gpu.memory_bytes * self.num_gpus

    def describe(self) -> dict:
        return {
            "gpu": self.gpu.display_name,
            "num_gpus": self.num_gpus,
            "interconnect": self.interconnect.name,
            "total_memory_gib": round(self.total_memory_bytes / (1 << 30), 1),
        }


@dataclass(frozen=True)
class HardwareSetup:
    """One row of the paper's Table 3: a cluster plus the model served on it.

    Attributes:
        name: Registry key, e.g. ``"h100-nvlink"``.
        scenario: Human-readable scenario label from the paper.
        cluster: The GPUs.
        model_name: Name of the model (resolved via ``repro.model.get_model``).
    """

    name: str
    scenario: str
    cluster: ClusterSpec
    model_name: str

    def describe(self) -> dict:
        summary = self.cluster.describe()
        summary.update({"setup": self.name, "scenario": self.scenario, "model": self.model_name})
        return summary


def make_cluster(gpu_name: str, num_gpus: int = 2, interconnect_name: str = "pcie-gen4") -> ClusterSpec:
    """Convenience constructor resolving GPU and interconnect by name."""
    return ClusterSpec(
        gpu=get_gpu(gpu_name),
        num_gpus=num_gpus,
        interconnect=get_interconnect(interconnect_name),
    )


HARDWARE_SETUPS: dict[str, HardwareSetup] = {
    "l4": HardwareSetup(
        name="l4",
        scenario="Low-end GPU",
        cluster=ClusterSpec(gpu=L4, num_gpus=2, interconnect=PCIE_GEN4),
        model_name="llama-3.1-8b",
    ),
    "a100": HardwareSetup(
        name="a100",
        scenario="Middle-end GPU",
        cluster=ClusterSpec(gpu=A100_40GB, num_gpus=2, interconnect=PCIE_GEN4),
        model_name="qwen-32b-fp8",
    ),
    "h100": HardwareSetup(
        name="h100",
        scenario="High-end GPU",
        cluster=ClusterSpec(gpu=H100_80GB, num_gpus=2, interconnect=PCIE_GEN4),
        model_name="llama-3.3-70b-fp8",
    ),
    "h100-nvlink": HardwareSetup(
        name="h100-nvlink",
        scenario="High-end GPU w/ NVLink",
        cluster=ClusterSpec(gpu=H100_80GB, num_gpus=2, interconnect=NVLINK),
        model_name="llama-3.3-70b-fp8",
    ),
}


def get_hardware_setup(name: str) -> HardwareSetup:
    """Look up one of the paper's hardware setups by name."""
    try:
        return HARDWARE_SETUPS[name]
    except KeyError:
        known = ", ".join(sorted(HARDWARE_SETUPS))
        raise ConfigurationError(
            f"unknown hardware setup {name!r}; known setups: {known}"
        ) from None


def list_hardware_setups() -> list[str]:
    """Return the hardware setup names in the order the paper presents them."""
    return ["l4", "a100", "h100", "h100-nvlink"]
