"""Inter-GPU interconnect model.

Tensor parallelism spends a significant fraction of every layer in all-reduce
communication; pipeline parallelism moves activations point-to-point between
stages.  The paper's H100 results with and without NVLink (Figure 8) hinge on
exactly this cost, so the interconnect is modelled explicitly: a per-message
latency plus a bandwidth term, with the standard ring all-reduce volume factor
``2 * (n - 1) / n``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import gbps


@dataclass(frozen=True)
class Interconnect:
    """A GPU-to-GPU link.

    Attributes:
        name: Registry key (``"pcie-gen4"``, ``"nvlink"``).
        bandwidth: Effective unidirectional bandwidth in bytes/s.
        latency: Per-message latency in seconds.
    """

    name: str
    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError(f"interconnect {self.name!r} has non-positive bandwidth")
        if self.latency < 0:
            raise ConfigurationError(f"interconnect {self.name!r} has negative latency")


PCIE_GEN4 = Interconnect(name="pcie-gen4", bandwidth=gbps(25), latency=10e-6)
NVLINK = Interconnect(name="nvlink", bandwidth=gbps(450), latency=3e-6)

INTERCONNECT_REGISTRY: dict[str, Interconnect] = {
    link.name: link for link in (PCIE_GEN4, NVLINK)
}


def get_interconnect(name: str) -> Interconnect:
    """Look up a registered interconnect by name."""
    try:
        return INTERCONNECT_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(INTERCONNECT_REGISTRY))
        raise ConfigurationError(
            f"unknown interconnect {name!r}; known interconnects: {known}"
        ) from None


def allreduce_time(message_bytes: float, num_gpus: int, link: Interconnect) -> float:
    """Time for one ring all-reduce of ``message_bytes`` across ``num_gpus``.

    Uses the classic ring model: each GPU sends ``2 * (n - 1) / n`` times the
    message size, in ``2 * (n - 1)`` latency-bound steps.
    """
    if num_gpus < 1:
        raise ConfigurationError("allreduce requires at least one GPU")
    if num_gpus == 1:
        return 0.0
    volume = 2.0 * (num_gpus - 1) / num_gpus * message_bytes
    steps = 2 * (num_gpus - 1)
    return volume / link.bandwidth + steps * link.latency


def point_to_point_time(message_bytes: float, link: Interconnect) -> float:
    """Time to move ``message_bytes`` over one point-to-point link."""
    return message_bytes / link.bandwidth + link.latency
