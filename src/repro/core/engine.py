"""Engine specification and the simulated engine instance.

An :class:`EngineSpec` captures everything that distinguishes the paper's five
engines from each other — execution mode, scheduling policy, KV commit policy,
whether the full KV cache must be reserved during a forward pass, and the
parallelism degrees.  :class:`EngineInstance` then executes any spec on the
shared substrates (latency model, memory model, KV-cache manager) inside the
discrete-event simulation.

Per §6.1 of the paper, prefill-only inference is compute-bound, so batching
requests does not raise throughput; every engine therefore serves one request
at a time per pipeline stage, and parallel engines differ only in how a single
request's work is spread across GPUs.

The paper's engine is built by :func:`prefillonly_engine_spec`; the baselines
live in :mod:`repro.baselines`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.core.jct import JCTEstimator
from repro.core.profile_run import ProfileRunResult, run_profile
from repro.core.request_state import EngineRequest, RequestState
from repro.core.scheduler import DEFAULT_FAIRNESS_LAMBDA, Scheduler, make_scheduler
from repro.errors import CapacityError, ConfigurationError, SchedulingError
from repro.hardware.gpu import GPUSpec
from repro.hardware.interconnect import Interconnect, PCIE_GEN4
from repro.kvcache.manager import CommitPolicy, ExecutionLease, KVCacheManager
from repro.model.config import ModelConfig
from repro.model.latency import LatencyModel
from repro.model.memory import PrefillMode
from repro.obs.recorder import NULL_RECORDER
from repro.workloads.trace import Request

_TIME_EPSILON = 1e-9


@dataclass(frozen=True)
class EngineSpec:
    """Configuration of one engine flavour.

    Attributes:
        name: Engine name used in reports (``"prefillonly"``, ``"paged-attention"``, ...).
        prefill_mode: How the forward pass is executed.
        scheduling_policy: ``"fcfs"``, ``"srjf"``, or ``"srjf-calibrated"``.
        commit_policy: What happens to a finished request's KV cache.
        reserve_full_kv: Whether the uncached tokens' KV must be drawn from the
            block pool for the whole forward pass (True for vLLM-style baselines).
        retain_kv_layers: Layers of KV kept live during a hybrid pass.
        tensor_parallel / pipeline_parallel: Parallel degrees per instance.
        chunk_tokens: Chunk size for chunked / hybrid prefilling.
        enable_prefix_caching: Whether the prefix cache is consulted at all.
        fairness_lambda: λ of Algorithm 1 for the SRJF schedulers.
        use_fitted_jct: Use the fitted linear JCT model instead of the
            cache-miss-token proxy for SRJF scoring.
        kv_block_size: Tokens per KV block.
        cpu_offload_gib: Host-memory budget (GiB) for offloaded KV blocks.  Used
            by the ``SUFFIX_OFFLOAD`` commit policy (the §9 extension of the
            paper: offload instead of discard, LMCache-style).
        kv_capacity_tokens: Optional cap on the GPU KV-cache budget (tokens).
            The profile run still decides the real budget; the cap only lowers
            it, which is how equal-GPU-capacity experiments (e.g. tiering vs
            suffix discard) hold the L1 size constant.
        description: One-line description for reports.
    """

    name: str
    prefill_mode: PrefillMode
    scheduling_policy: str
    commit_policy: CommitPolicy
    reserve_full_kv: bool
    retain_kv_layers: int | None = None
    tensor_parallel: int = 1
    pipeline_parallel: int = 1
    chunk_tokens: int = 2048
    enable_prefix_caching: bool = True
    fairness_lambda: float = DEFAULT_FAIRNESS_LAMBDA
    use_fitted_jct: bool = False
    kv_block_size: int = 256
    cpu_offload_gib: float = 0.0
    kv_capacity_tokens: int | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.tensor_parallel < 1 or self.pipeline_parallel < 1:
            raise ConfigurationError("parallel degrees must be >= 1")
        if self.chunk_tokens <= 0:
            raise ConfigurationError("chunk_tokens must be positive")
        if self.kv_block_size <= 0:
            raise ConfigurationError("kv_block_size must be positive")
        if self.kv_capacity_tokens is not None and self.kv_capacity_tokens < 0:
            raise ConfigurationError("kv_capacity_tokens must be non-negative")

    @property
    def gpus_per_instance(self) -> int:
        """GPUs one engine instance occupies."""
        return self.tensor_parallel * self.pipeline_parallel

    def with_overrides(self, **overrides) -> "EngineSpec":
        """Return a copy with some fields replaced (used by ablation benches)."""
        return replace(self, **overrides)


def prefillonly_engine_spec(*, fairness_lambda: float = DEFAULT_FAIRNESS_LAMBDA,
                            chunk_tokens: int = 2048,
                            commit_policy: CommitPolicy = CommitPolicy.SUFFIX_DISCARD,
                            scheduling_policy: str = "srjf-calibrated",
                            use_fitted_jct: bool = False,
                            kv_block_size: int = 256,
                            cpu_offload_gib: float = 0.0) -> EngineSpec:
    """The paper's engine: hybrid prefilling + suffix discarding + calibrated SRJF.

    Pass ``commit_policy=CommitPolicy.SUFFIX_OFFLOAD`` together with a non-zero
    ``cpu_offload_gib`` to enable the §9 extension (offload the suffix KV cache
    to host memory instead of discarding it).
    """
    return EngineSpec(
        name="prefillonly",
        prefill_mode=PrefillMode.HYBRID,
        scheduling_policy=scheduling_policy,
        commit_policy=commit_policy,
        reserve_full_kv=False,
        retain_kv_layers=1,
        chunk_tokens=chunk_tokens,
        fairness_lambda=fairness_lambda,
        use_fitted_jct=use_fitted_jct,
        kv_block_size=kv_block_size,
        cpu_offload_gib=cpu_offload_gib,
        description="PrefillOnly: hybrid prefilling, suffix KV discarding, SRJF with "
                    "continuous JCT calibration",
    )


def kv_block_bytes(spec: EngineSpec, model: ModelConfig) -> int:
    """Bytes of one KV block under ``spec``'s sharding of ``model``.

    The single source of truth for block sizing: engines size their offload /
    tier stores with it, and the fleet sizes the shared cluster store with it
    (and asserts that every replica agrees, since the shared store keys
    blocks by content hash).
    """
    return max(int(
        spec.kv_block_size
        * model.kv_bytes_per_token
        / (spec.tensor_parallel * spec.pipeline_parallel)
    ), 1)


@dataclass(frozen=True)
class FinishedRequest:
    """Record of one completed (or rejected) request, used for all metrics."""

    request_id: int
    user_id: str
    num_tokens: int
    cached_tokens: int
    arrival_time: float
    start_time: float
    finish_time: float
    instance_name: str
    engine_name: str
    rejected: bool = False
    rejection_reason: str | None = None

    @property
    def latency(self) -> float:
        """End-to-end latency (queueing + execution)."""
        return self.finish_time - self.arrival_time

    @property
    def queueing_time(self) -> float:
        return self.start_time - self.arrival_time

    @property
    def execution_time(self) -> float:
        return self.finish_time - self.start_time

    @property
    def had_cache_hit(self) -> bool:
        return self.cached_tokens > 0


@dataclass
class _RunningJob:
    """A request occupying one pipeline stage."""

    engine_request: EngineRequest
    lease: ExecutionLease
    stage_times: list[float]
    stage_index: int
    stage_finish_time: float
    cached_tokens: int
    #: True once the current stage's work is done; the job may still sit in the
    #: stage if the next stage is occupied (a pipeline bubble / blocking).
    stage_done: bool = False


@dataclass
class _Stage:
    """One pipeline stage (a plain executor for non-PP engines)."""

    index: int
    job: _RunningJob | None = None
    busy_time: float = 0.0

    @property
    def is_free(self) -> bool:
        return self.job is None


class EngineInstance:
    """One engine instance: a scheduler, a KV cache, and pipeline stage(s).

    Args:
        spec: Engine flavour.
        model: Model served.
        gpu: GPU type of each shard.
        interconnect: Link between shards (needed when TP or PP > 1).
        max_input_length: User-provided MIL used by the profile run.
        name: Instance name (unique within a serving system).
        fast_paths: Use the heap-based prefix-cache eviction and the
            incremental JCT-calibration lookup (default).  Behaviour is
            identical either way; ``False`` restores the original full scans
            for before/after benchmarks.
        tier_config: Optional tiered prefix-cache configuration
            (:class:`~repro.kvcache.tiers.TierConfig`).  When enabled, the
            instance runs a GPU -> host -> cluster hierarchy instead of the
            flat offload store, and the commit policy's suffix overflow
            demotes down the tiers instead of being discarded.
        cluster_store: The fleet-shared L3 store (injected by the owning
            :class:`~repro.cluster.Fleet`); None runs a two-tier hierarchy.

    Raises:
        CapacityError: if the profile run shows that a ``max_input_length``-token
            request cannot be served by this spec on this GPU.
    """

    def __init__(self, spec: EngineSpec, model: ModelConfig, gpu: GPUSpec, *,
                 interconnect: Interconnect | None = None,
                 max_input_length: int, name: str = "instance-0",
                 fast_paths: bool = True,
                 tier_config=None, cluster_store=None) -> None:
        if spec.gpus_per_instance > 1 and interconnect is None:
            raise ConfigurationError(
                f"engine {spec.name!r} uses {spec.gpus_per_instance} GPUs per instance "
                "and therefore needs an interconnect"
            )
        self.spec = spec
        self.name = name
        self.model = model
        self.gpu = gpu
        self._latency = LatencyModel(model, gpu, interconnect)
        self.profile: ProfileRunResult = run_profile(
            model, gpu,
            max_input_length=max_input_length,
            mode=spec.prefill_mode,
            chunk_tokens=spec.chunk_tokens,
            retain_kv_layers=spec.retain_kv_layers,
            tensor_parallel=spec.tensor_parallel,
            pipeline_parallel=spec.pipeline_parallel,
        )
        kv_bytes_per_block = kv_block_bytes(spec, model)
        kv_budget_tokens = self.profile.kv_budget_tokens
        if spec.kv_capacity_tokens is not None:
            kv_budget_tokens = min(kv_budget_tokens, spec.kv_capacity_tokens)

        tiers = None
        offload_store = None
        if tier_config is not None and tier_config.enabled:
            from repro.kvcache.tiers import build_tiered_store

            # The replica's uncached prefill rate, used to express tier
            # transfer seconds in compute-token units for JCT scoring.
            full_pass = self._latency.prefill_time(
                max_input_length,
                num_cached_tokens=0,
                mode=spec.prefill_mode,
                chunk_tokens=spec.chunk_tokens,
                tensor_parallel=spec.tensor_parallel,
                pipeline_parallel=spec.pipeline_parallel,
            ).total
            tiers = build_tiered_store(
                tier_config,
                replica=name,
                block_size=spec.kv_block_size,
                block_bytes=kv_bytes_per_block,
                cluster=cluster_store,
                compute_tokens_per_second=(
                    max_input_length / full_pass if full_pass > 0 else 0.0
                ),
            )
        elif spec.commit_policy is CommitPolicy.SUFFIX_OFFLOAD and spec.cpu_offload_gib > 0:
            from repro.kvcache.offload import CPUOffloadStore

            offload_store = CPUOffloadStore(
                capacity_bytes=int(spec.cpu_offload_gib * (1 << 30)),
                block_bytes=kv_bytes_per_block,
                link=interconnect if interconnect is not None else PCIE_GEN4,
            )
        self.kv = KVCacheManager(
            kv_budget_tokens,
            block_size=spec.kv_block_size,
            offload_store=offload_store,
            tiers=tiers,
            enable_prefix_caching=spec.enable_prefix_caching,
            use_eviction_heap=fast_paths,
        )
        estimator: JCTEstimator | None = None
        if spec.use_fitted_jct:
            estimator = JCTEstimator.from_latency_model(
                self._latency, max_input_length,
                mode=spec.prefill_mode,
                tensor_parallel=spec.tensor_parallel,
                pipeline_parallel=spec.pipeline_parallel,
                chunk_tokens=spec.chunk_tokens,
            )
        self.scheduler: Scheduler = make_scheduler(
            spec.scheduling_policy, estimator=estimator, fairness_lambda=spec.fairness_lambda,
            incremental_lookup=fast_paths,
        )
        self._waiting: list[EngineRequest] = []
        self._stages = [_Stage(index=i) for i in range(spec.pipeline_parallel)]
        self._finished: list[FinishedRequest] = []
        self._rejected: list[FinishedRequest] = []
        self._submitted = 0
        #: Service-time multiplier applied to work *started* while it is set.
        #: 1.0 (the default) is a bit-exact no-op; the fault subsystem raises
        #: it to model a degraded (slow) node.
        self.slowdown: float = 1.0
        #: Observability hooks: the recorder this engine reports start/finish
        #: span events to (the no-op null recorder unless a traced fleet
        #: installs its own) and the replica key events are attributed to.
        self.obs = NULL_RECORDER
        self.obs_key = 0

    # ---------------------------------------------------------------- state

    @property
    def max_input_length(self) -> int:
        """The MIL this instance was provisioned for."""
        return self.profile.max_input_length

    @property
    def num_waiting(self) -> int:
        return len(self._waiting)

    @property
    def num_running(self) -> int:
        return sum(1 for stage in self._stages if stage.job is not None)

    @property
    def finished_requests(self) -> list[FinishedRequest]:
        """All completion records so far (does not include rejections)."""
        return list(self._finished)

    @property
    def rejected_requests(self) -> list[FinishedRequest]:
        return list(self._rejected)

    @property
    def busy_time(self) -> float:
        """Aggregate stage-busy seconds (for utilisation reports)."""
        return sum(stage.busy_time for stage in self._stages)

    def is_idle(self) -> bool:
        """True when nothing is waiting or running."""
        return not self._waiting and all(stage.is_free for stage in self._stages)

    # --------------------------------------------------------------- submit

    def submit(self, request: Request, now: float) -> bool:
        """Add a request to the waiting queue.

        Returns False (and records a rejection) when the request exceeds the
        engine's maximum input length and can therefore never be served.
        """
        self._submitted += 1
        if request.num_tokens > self.max_input_length:
            record = FinishedRequest(
                request_id=request.request_id,
                user_id=request.user_id,
                num_tokens=request.num_tokens,
                cached_tokens=0,
                arrival_time=now,
                start_time=now,
                finish_time=now,
                instance_name=self.name,
                engine_name=self.spec.name,
                rejected=True,
                rejection_reason=(
                    f"request has {request.num_tokens} tokens but the engine's maximum "
                    f"input length is {self.max_input_length}"
                ),
            )
            self._rejected.append(record)
            return False
        engine_request = EngineRequest(
            request=request,
            block_hashes=request.block_hashes(self.spec.kv_block_size),
            enqueue_time=now,
        )
        self.scheduler.on_submit(engine_request, self.kv, now)
        self._waiting.append(engine_request)
        return True

    # ------------------------------------------------------------ execution

    def _stage_times(self, uncached_tokens: int, cached_tokens: int) -> list[float]:
        """Per-stage service times of one request."""
        timing = self._latency.prefill_time(
            uncached_tokens,
            num_cached_tokens=cached_tokens,
            mode=self.spec.prefill_mode,
            chunk_tokens=self.spec.chunk_tokens,
            tensor_parallel=self.spec.tensor_parallel,
            pipeline_parallel=self.spec.pipeline_parallel,
        )
        stages = self.spec.pipeline_parallel
        return [timing.total / stages * self.slowdown] * stages

    def _try_start_next(self, now: float) -> bool:
        """Admit one waiting request into stage 0 if possible."""
        stage0 = self._stages[0]
        if not stage0.is_free or not self._waiting:
            return False
        decision = self.scheduler.select(self._waiting, self.kv, now)
        if decision is None:
            return False
        engine_request = decision.request
        try:
            lease = self.kv.begin_execution(
                engine_request.block_hashes,
                engine_request.num_tokens,
                reserve_full_kv=self.spec.reserve_full_kv,
                now=now,
            )
        except CapacityError as exc:
            if self.num_running > 0:
                # Another in-flight request holds the pool; retry after it finishes.
                return False
            self._waiting.remove(engine_request)
            engine_request.state = RequestState.REJECTED
            engine_request.rejection_reason = str(exc)
            self._rejected.append(FinishedRequest(
                request_id=engine_request.request_id,
                user_id=engine_request.user_id,
                num_tokens=engine_request.num_tokens,
                cached_tokens=0,
                arrival_time=engine_request.enqueue_time,
                start_time=now,
                finish_time=now,
                instance_name=self.name,
                engine_name=self.spec.name,
                rejected=True,
                rejection_reason=str(exc),
            ))
            return True

        self._waiting.remove(engine_request)
        engine_request.state = RequestState.RUNNING
        engine_request.start_time = now

        # §9 extension: a prefix continuation resident below the GPU — in the
        # flat offload store or in the host/cluster tiers — can be streamed
        # back instead of recomputed; the transfer time is charged to the
        # first stage.
        offloaded_tokens = 0
        offload_load_time = 0.0
        if self.kv.has_tiers:
            offloaded_tokens, offload_load_time = self.kv.fetch_tiers(
                engine_request.block_hashes, now=now
            )
        elif self.spec.commit_policy is CommitPolicy.SUFFIX_OFFLOAD:
            _, offloaded_tokens, offload_load_time = self.kv.lookup_with_offload(
                engine_request.block_hashes
            )
        total_cached = lease.cached_tokens + offloaded_tokens
        engine_request.cached_tokens_at_start = total_cached
        uncached = engine_request.num_tokens - total_cached
        stage_times = self._stage_times(uncached, total_cached)
        stage_times[0] += offload_load_time
        stage0.job = _RunningJob(
            engine_request=engine_request,
            lease=lease,
            stage_times=stage_times,
            stage_index=0,
            stage_finish_time=now + stage_times[0],
            cached_tokens=total_cached,
        )
        stage0.busy_time += stage_times[0]
        self.obs.emit(
            now, self.obs_key, "start",
            request=engine_request.request_id,
            queued_s=now - engine_request.enqueue_time,
            cached_tokens=total_cached,
        )
        return True

    def _complete_job(self, job: _RunningJob, now: float) -> FinishedRequest:
        engine_request = job.engine_request
        self.kv.finish_execution(job.lease, policy=self.spec.commit_policy, now=now)
        engine_request.state = RequestState.FINISHED
        engine_request.finish_time = now
        record = FinishedRequest(
            request_id=engine_request.request_id,
            user_id=engine_request.user_id,
            num_tokens=engine_request.num_tokens,
            cached_tokens=job.cached_tokens,
            arrival_time=engine_request.enqueue_time,
            start_time=engine_request.start_time if engine_request.start_time is not None else now,
            finish_time=now,
            instance_name=self.name,
            engine_name=self.spec.name,
        )
        self._finished.append(record)
        attrs = {
            "request": record.request_id,
            "latency_s": record.latency,
            "tokens": record.num_tokens,
        }
        tenant = engine_request.request.metadata.get("tenant")
        if tenant is not None:
            attrs["tenant"] = tenant
        self.obs.emit(now, self.obs_key, "finish", **attrs)
        return record

    # --------------------------------------------------------------- events

    def next_event_time(self) -> float | None:
        """Earliest internal event (a stage finishing), or None when idle.

        Jobs that already finished their stage but are blocked behind a busy
        downstream stage generate no event of their own — they move when the
        blocking stage's completion event fires.
        """
        times = [
            stage.job.stage_finish_time
            for stage in self._stages
            if stage.job is not None and not stage.job.stage_done
        ]
        return min(times) if times else None

    def advance_to(self, now: float) -> list[FinishedRequest]:
        """Process every internal event due at or before ``now``.

        Completes stage work that has finished, moves jobs down the pipeline,
        and admits new requests into stage 0.  Returns the requests that
        completed during this call.
        """
        finished: list[FinishedRequest] = []
        progressed = True
        while progressed:
            progressed = False
            for index in range(len(self._stages) - 1, -1, -1):
                stage = self._stages[index]
                job = stage.job
                if job is None:
                    continue
                if not job.stage_done and job.stage_finish_time <= now + _TIME_EPSILON:
                    job.stage_done = True
                if not job.stage_done:
                    continue
                if index == len(self._stages) - 1:
                    finished.append(self._complete_job(job, now))
                    stage.job = None
                    progressed = True
                else:
                    next_stage = self._stages[index + 1]
                    if next_stage.is_free:
                        job.stage_index = index + 1
                        job.stage_done = False
                        job.stage_finish_time = now + job.stage_times[index + 1]
                        next_stage.job = job
                        next_stage.busy_time += job.stage_times[index + 1]
                        stage.job = None
                        progressed = True
            if self._try_start_next(now):
                progressed = True
        return finished

    def has_request(self, request_id: int) -> bool:
        """Whether ``request_id`` is currently waiting or running here."""
        if any(er.request_id == request_id for er in self._waiting):
            return True
        return any(
            stage.job is not None
            and stage.job.engine_request.request_id == request_id
            for stage in self._stages
        )

    def running_request_ids(self) -> list[int]:
        """Request ids currently occupying a pipeline stage."""
        return [
            stage.job.engine_request.request_id
            for stage in self._stages
            if stage.job is not None
        ]

    def cancel(self, request_id: int, now: float) -> str | None:
        """Abort a waiting or in-flight request without a completion record.

        The resilience layer's primitive for deadline cancellation and
        hedge-loser cleanup.  A running job's lease aborts cleanly (nothing
        commits, scratch frees) and the stage-busy time it will no longer
        spend is rolled back, so a cancelled run is billed only for the work
        actually performed.  The caller owns any terminal accounting record.

        Returns ``"waiting"`` / ``"running"`` for where the request was
        found, or ``None`` when it is not on this instance.
        """
        for engine_request in self._waiting:
            if engine_request.request_id == request_id:
                self._waiting.remove(engine_request)
                engine_request.state = RequestState.REJECTED
                return "waiting"
        for stage in self._stages:
            job = stage.job
            if job is None or job.engine_request.request_id != request_id:
                continue
            if not job.stage_done:
                stage.busy_time -= max(job.stage_finish_time - now, 0.0)
            self.kv.finish_execution(job.lease, policy=CommitPolicy.NONE, now=now)
            job.engine_request.state = RequestState.REJECTED
            stage.job = None
            # The caller advances the instance: the freed stage can admit
            # queued work immediately, and completions must flow through the
            # owner's observation hooks, not be dropped here.
            return "running"
        return None

    def discard_finished(self, request_id: int) -> FinishedRequest | None:
        """Drop and return the newest completion record for ``request_id``.

        Used when a hedge duplicate completes in the same event batch as the
        winner: the loser's record must not double-count the request.
        """
        for index in range(len(self._finished) - 1, -1, -1):
            if self._finished[index].request_id == request_id:
                return self._finished.pop(index)
        return None

    def crash(self, now: float) -> tuple[list[Request], int, int]:
        """Kill the instance: drop all queued and in-flight work immediately.

        Unlike a drain, nothing completes and nothing is flushed — the fault
        subsystem's replica-crash semantics.  In-flight partial compute is
        discarded (those requests must restart from scratch elsewhere) and
        the waiting queue empties; the owning fleet re-routes the evacuated
        requests.  Completion records of requests that finished *before* the
        crash are preserved.

        Returns ``(evacuated requests, in-flight count, lost work tokens)``
        where the evacuated list is ordered oldest-first (in-flight work in
        reverse stage order, then the waiting queue in arrival order) and
        lost work counts the in-flight requests' tokens whose partial
        forward passes died with the node.
        """
        evacuated: list[Request] = []
        lost_work = 0
        in_flight = 0
        for stage in reversed(self._stages):
            job = stage.job
            if job is None:
                continue
            evacuated.append(job.engine_request.request)
            lost_work += job.engine_request.num_tokens
            in_flight += 1
            stage.job = None
        evacuated.extend(request.request for request in self._waiting)
        self._waiting.clear()
        return evacuated, in_flight, lost_work

    def drain_until(self, limit: float = math.inf) -> list[FinishedRequest]:
        """Run the instance to completion (no new arrivals), up to ``limit`` seconds.

        Convenience used by unit tests and the scheduling-example benchmark.
        """
        finished: list[FinishedRequest] = []
        guard = 0
        while True:
            next_time = self.next_event_time()
            if next_time is None:
                if not self._waiting:
                    break
                raise SchedulingError("waiting requests exist but no event is pending")
            if next_time > limit:
                break
            finished.extend(self.advance_to(next_time))
            guard += 1
            if guard > 1_000_000:
                raise SchedulingError("drain_until exceeded the iteration guard")
        return finished


def build_engine(spec: EngineSpec, model: ModelConfig, gpu: GPUSpec, *,
                 interconnect: Interconnect | None = None,
                 max_input_length: int, name: str | None = None) -> EngineInstance:
    """Construct one engine instance from a spec (thin convenience wrapper)."""
    return EngineInstance(
        spec, model, gpu,
        interconnect=interconnect,
        max_input_length=max_input_length,
        name=name if name is not None else f"{spec.name}-0",
    )
