"""The engine's startup profile run.

PrefillOnly asks the user for the maximum input length (MIL) the deployment
must handle, forwards a fake request of that length through the model, measures
the peak GPU memory the forward pass needs, and dedicates whatever is left to
the prefix KV cache.  This module reproduces that procedure on the analytical
memory model.

Two accounting regimes exist, matching how the engines actually hold KV during
a forward pass:

* Baseline engines (``FULL`` / ``CHUNKED`` prefilling) draw the in-flight
  request's KV cache *from the block pool* (that is how vLLM allocates), so the
  profile run budgets the pool as "everything left after weights, workspace and
  activations", and a request is feasible only if its full KV fits in that pool.
* PrefillOnly (``HYBRID``) keeps only ``retain_kv_layers`` layers of KV live
  during the pass and never charges the pool for the in-flight request, so the
  retained slice is part of the forward-pass peak instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError
from repro.hardware.gpu import GPUSpec
from repro.model.config import ModelConfig
from repro.model.memory import MemoryModel, PrefillMode
from repro.perf import memo

#: Fraction of GPU memory the engine is allowed to use, mirroring vLLM's
#: ``gpu_memory_utilization`` flag (the remainder covers the CUDA context,
#: NCCL buffers, and allocator fragmentation).
DEFAULT_GPU_MEMORY_UTILIZATION = 0.92


@dataclass(frozen=True)
class ProfileRunResult:
    """Outcome of the profile run on one GPU shard.

    Attributes:
        max_input_length: The MIL the profile run was sized for.
        peak_forward_bytes: Peak memory of the profile forward pass, excluding
            any KV drawn from the block pool (weights, workspace, activations,
            plus the KV retained outside the pool during a hybrid pass).
        kv_budget_bytes: Bytes left over for the KV-cache block pool.
        kv_budget_tokens: The same budget expressed in tokens of the KV this
            shard stores per token (all layers for TP / single GPU, one stage's
            layers for PP).
        requires_pool_for_inflight: True for baseline modes whose in-flight
            request KV is drawn from the pool.
    """

    max_input_length: int
    peak_forward_bytes: float
    kv_budget_bytes: float
    kv_budget_tokens: int
    requires_pool_for_inflight: bool
    usable_memory_bytes: float = 0.0


#: Interned profile-run results keyed on every input of :func:`run_profile`.
#: Every replica of a homogeneous fleet (and every autoscaled clone) runs the
#: identical profile pass; interning makes replica N's startup a dict hit.
#: The result is frozen, so sharing one instance is safe.
_PROFILE_MEMO: dict[tuple, ProfileRunResult] = {}
memo.register_cache(_PROFILE_MEMO.clear)


def run_profile(model: ModelConfig, gpu: GPUSpec, *, max_input_length: int,
                mode: PrefillMode, chunk_tokens: int = 2048,
                retain_kv_layers: int | None = None,
                tensor_parallel: int = 1, pipeline_parallel: int = 1,
                workspace_fraction: float = 0.04,
                gpu_memory_utilization: float = DEFAULT_GPU_MEMORY_UTILIZATION) -> ProfileRunResult:
    """Run the profile pass and budget the prefix KV cache.

    Successful results are memoized on the full argument tuple (failures are
    recomputed — they are cheap and their messages embed nothing mutable).

    Raises:
        CapacityError: if a single request of ``max_input_length`` tokens cannot
            be served under the given execution mode on this GPU — either the
            forward pass itself does not fit, or (for baseline modes) the KV
            pool left over is smaller than the request's own KV cache.
    """
    if memo.memo_enabled():
        key = (model, gpu, max_input_length, mode, chunk_tokens, retain_kv_layers,
               tensor_parallel, pipeline_parallel, workspace_fraction,
               gpu_memory_utilization)
        cached = _PROFILE_MEMO.get(key)
        if cached is None:
            cached = _run_profile_uncached(
                model, gpu, max_input_length=max_input_length, mode=mode,
                chunk_tokens=chunk_tokens, retain_kv_layers=retain_kv_layers,
                tensor_parallel=tensor_parallel, pipeline_parallel=pipeline_parallel,
                workspace_fraction=workspace_fraction,
                gpu_memory_utilization=gpu_memory_utilization,
            )
            _PROFILE_MEMO[key] = cached
        return cached
    return _run_profile_uncached(
        model, gpu, max_input_length=max_input_length, mode=mode,
        chunk_tokens=chunk_tokens, retain_kv_layers=retain_kv_layers,
        tensor_parallel=tensor_parallel, pipeline_parallel=pipeline_parallel,
        workspace_fraction=workspace_fraction,
        gpu_memory_utilization=gpu_memory_utilization,
    )


def _run_profile_uncached(model: ModelConfig, gpu: GPUSpec, *, max_input_length: int,
                          mode: PrefillMode, chunk_tokens: int,
                          retain_kv_layers: int | None,
                          tensor_parallel: int, pipeline_parallel: int,
                          workspace_fraction: float,
                          gpu_memory_utilization: float) -> ProfileRunResult:
    if max_input_length <= 0:
        raise CapacityError("max_input_length must be positive")
    if not 0.0 < gpu_memory_utilization <= 1.0:
        raise CapacityError("gpu_memory_utilization must be in (0, 1]")
    usable = gpu.memory_bytes * gpu_memory_utilization
    memory = MemoryModel(model, workspace_fraction=workspace_fraction)
    weights = memory.weight_bytes(
        tensor_parallel=tensor_parallel, pipeline_parallel=pipeline_parallel
    )
    workspace = memory.workspace_bytes()
    activation = memory.activation_peak_bytes(
        max_input_length, mode=mode, chunk_tokens=chunk_tokens, tensor_parallel=tensor_parallel
    )
    stage_layers = model.num_layers // pipeline_parallel

    pool_for_inflight = mode is not PrefillMode.HYBRID
    if pool_for_inflight:
        retained_kv = 0.0
    else:
        layers = 1 if retain_kv_layers is None else min(retain_kv_layers, stage_layers)
        retained_kv = memory.kv_cache_bytes(
            max_input_length, num_layers=layers, tensor_parallel=tensor_parallel
        )

    peak = weights + workspace + activation + retained_kv
    if peak > usable:
        raise CapacityError(
            f"a {max_input_length}-token request needs {peak / (1 << 30):.1f} GiB in mode "
            f"{mode.value!r} but {gpu.display_name} offers {usable / (1 << 30):.1f} GiB "
            f"(at {gpu_memory_utilization:.0%} utilisation)",
            required=int(peak),
            available=int(usable),
        )

    kv_budget_bytes = usable - peak
    per_token = memory.kv_cache_bytes(1, num_layers=stage_layers, tensor_parallel=tensor_parallel)
    kv_budget_tokens = int(kv_budget_bytes // per_token) if per_token > 0 else 0

    if pool_for_inflight and kv_budget_tokens < max_input_length:
        raise CapacityError(
            f"mode {mode.value!r} must hold the full KV cache of a {max_input_length}-token "
            f"request in the block pool, but the pool only fits {kv_budget_tokens} tokens on "
            f"{gpu.display_name}",
            required=max_input_length,
            available=kv_budget_tokens,
        )

    return ProfileRunResult(
        max_input_length=max_input_length,
        peak_forward_bytes=peak,
        kv_budget_bytes=kv_budget_bytes,
        kv_budget_tokens=kv_budget_tokens,
        requires_pool_for_inflight=pool_for_inflight,
        usable_memory_bytes=usable,
    )
