"""Hybrid prefilling planner.

Hybrid prefilling evaluates position-wise (linear) layers chunk-by-chunk while
evaluating attention layers over the whole sequence.  The planner in this
module is the piece the paper implements on top of torch.compile: it takes the
model's computation graph, groups consecutive position-wise operations into
virtual layers (via :func:`repro.execution.tensor_graph.group_chunkable_operations`),
and derives the memory consequences — how large the chunked intermediate
tensors are, what must stay resident for the whole sequence, and therefore what
peak memory a prefill of a given length needs.  The engine's profile run and
the MIL analysis both consume this plan; the numerical validation of the plan
lives in :class:`repro.execution.numeric.MicroTransformer`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.execution.tensor_graph import (
    ComputationGraph,
    GraphNode,
    VirtualLayer,
    build_transformer_graph,
    group_chunkable_operations,
)
from repro.model.config import ModelConfig
from repro.model.memory import MemoryModel, PrefillMode


@dataclass(frozen=True)
class HybridPrefillPlan:
    """The result of planning hybrid prefilling for one model.

    Attributes:
        chunk_tokens: Chunk size used for the position-wise virtual layers.
        num_virtual_layers: How many chunked groups the graph was rewritten into.
        num_attention_ops: How many attention operations remain whole-sequence.
        largest_group_width: Largest per-token intermediate width of any group
            (this is what bounds the chunked working set).
        resident_bytes_per_token: Bytes that must stay live for every token of
            the sequence (residual stream, one layer's Q/K/V, attention output).
        chunked_bytes: Working-set bytes of one chunk flowing through the widest
            virtual layer.
    """

    chunk_tokens: int
    num_virtual_layers: int
    num_attention_ops: int
    largest_group_width: int
    resident_bytes_per_token: float
    chunked_bytes: float

    def peak_activation_bytes(self, num_tokens: int) -> float:
        """Peak transient activation bytes for a prefill of ``num_tokens``."""
        effective_chunk = min(num_tokens, self.chunk_tokens)
        return (
            num_tokens * self.resident_bytes_per_token
            + effective_chunk / self.chunk_tokens * self.chunked_bytes
        )


class HybridPrefillPlanner:
    """Builds :class:`HybridPrefillPlan` objects for a model.

    Args:
        model: Architecture to plan for.
        chunk_tokens: Position-wise chunk size (the paper's implementation uses
            a few thousand tokens; smaller chunks reduce peak memory further at
            the cost of more kernel launches).
    """

    def __init__(self, model: ModelConfig, *, chunk_tokens: int = 2048) -> None:
        if chunk_tokens <= 0:
            raise ValueError("chunk_tokens must be positive")
        self._model = model
        self._chunk_tokens = chunk_tokens
        self._memory = MemoryModel(model)
        self._graph: ComputationGraph | None = None
        self._plan_items: list[VirtualLayer | GraphNode] | None = None

    @property
    def model(self) -> ModelConfig:
        return self._model

    @property
    def chunk_tokens(self) -> int:
        return self._chunk_tokens

    def graph(self) -> ComputationGraph:
        """The model's forward computation graph (built lazily, cached)."""
        if self._graph is None:
            self._graph = build_transformer_graph(self._model)
        return self._graph

    def plan_items(self) -> list[VirtualLayer | GraphNode]:
        """The rewritten execution plan: virtual layers interleaved with attention."""
        if self._plan_items is None:
            self._plan_items = group_chunkable_operations(self.graph())
        return self._plan_items

    def plan(self) -> HybridPrefillPlan:
        """Summarise the rewritten graph into a memory plan."""
        items = self.plan_items()
        virtual_layers = [item for item in items if isinstance(item, VirtualLayer)]
        attention_ops = [item for item in items if isinstance(item, GraphNode)]
        largest_width = max(layer.peak_intermediate_width for layer in virtual_layers)
        profile = self._memory.activation_profile()
        resident = (
            2 * profile.residual_bytes
            + profile.qkv_bytes
            + profile.attention_output_bytes
        )
        chunked = (
            self._chunk_tokens
            * largest_width
            * self._model.activation_bytes_per_element
        )
        return HybridPrefillPlan(
            chunk_tokens=self._chunk_tokens,
            num_virtual_layers=len(virtual_layers),
            num_attention_ops=len(attention_ops),
            largest_group_width=largest_width,
            resident_bytes_per_token=resident,
            chunked_bytes=chunked,
        )

    def peak_memory_bytes(self, num_tokens: int, *, retain_kv_layers: int = 1) -> float:
        """Peak GPU bytes of a hybrid prefill of ``num_tokens`` (weights included)."""
        breakdown = self._memory.prefill_breakdown(
            num_tokens,
            mode=PrefillMode.HYBRID,
            chunk_tokens=self._chunk_tokens,
            retain_kv_layers=retain_kv_layers,
        )
        return breakdown.total
