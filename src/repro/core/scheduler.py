"""Request schedulers: FCFS, SRJF, and SRJF with continuous JCT calibration.

This module implements Algorithm 1 of the paper.  All schedulers answer one
question — which waiting request should run next? — but differ in what they
know:

* :class:`FCFSScheduler` — first come, first served (the vLLM/PagedAttention
  default, JCT-agnostic);
* :class:`SRJFScheduler` with ``continuous_calibration=False`` — shortest
  remaining job first using the JCT computed *when the request arrived*
  (the traditional JCT-based scheduler of §6.2, which misses cache-hit
  opportunities because the prefix cache keeps changing);
* :class:`SRJFScheduler` with ``continuous_calibration=True`` — PrefillOnly's
  scheduler: before every scheduling step the JCT of every waiting request is
  re-derived against the *current* prefix cache contents, and the score is
  offset by ``-λ · queueing_time`` to prevent starvation.

The calibration is memoised per (request, prefix-cache version), so a
scheduling step only re-queries the cache for requests whose score could have
changed — this keeps continuous calibration cheap even with long queues.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.jct import JCTEstimator
from repro.core.request_state import EngineRequest
from repro.errors import SchedulingError
from repro.kvcache.manager import KVCacheManager

#: Paper default for the fairness parameter (score units per second of queueing).
DEFAULT_FAIRNESS_LAMBDA = 500.0


@dataclass(frozen=True)
class SchedulerDecision:
    """Outcome of one scheduling step."""

    request: EngineRequest
    score: float
    cached_tokens: int


class Scheduler(abc.ABC):
    """Policy that picks the next waiting request to execute."""

    name: str = "scheduler"

    @abc.abstractmethod
    def select(self, queue: list[EngineRequest], kv: KVCacheManager,
               now: float) -> SchedulerDecision | None:
        """Pick the next request (without removing it from ``queue``).

        Returns ``None`` when the queue is empty.
        """

    def on_submit(self, request: EngineRequest, kv: KVCacheManager, now: float) -> None:
        """Hook called when a request enters the waiting queue."""


class FCFSScheduler(Scheduler):
    """First-come-first-served scheduling (JCT-agnostic baseline)."""

    name = "fcfs"

    def select(self, queue: list[EngineRequest], kv: KVCacheManager,
               now: float) -> SchedulerDecision | None:
        if not queue:
            return None
        request = min(queue, key=lambda r: (r.enqueue_time, r.request_id))
        cached = kv.lookup(request.block_hashes)
        return SchedulerDecision(request=request, score=request.enqueue_time, cached_tokens=cached)


class SRJFScheduler(Scheduler):
    """Shortest-remaining-job-first, optionally with continuous JCT calibration.

    Args:
        estimator: Fitted JCT model.  ``None`` selects the paper's default
            cache-miss-token proxy (score in tokens).
        fairness_lambda: The λ of Algorithm 1 — score units credited per second
            of queueing time.  Larger values improve worst-case latency at the
            cost of average latency (Figure 11).
        continuous_calibration: Re-derive every waiting request's cached-token
            count against the current prefix cache before each scheduling step
            (PrefillOnly's behaviour).  When False, the cached-token count
            captured at submit time is used forever (traditional SRJF).
        incremental_lookup: Recalibrate with the incremental
            :meth:`~repro.kvcache.manager.KVCacheManager.lookup_from` (default)
            instead of a full hash-chain walk per request per cache change.
            Scores are identical; ``False`` restores the original walks for
            before/after benchmarks.
    """

    def __init__(self, *, estimator: JCTEstimator | None = None,
                 fairness_lambda: float = DEFAULT_FAIRNESS_LAMBDA,
                 continuous_calibration: bool = True,
                 incremental_lookup: bool = True) -> None:
        if fairness_lambda < 0:
            raise SchedulingError("fairness_lambda must be non-negative")
        self._estimator = estimator
        self._lambda = fairness_lambda
        self._continuous = continuous_calibration
        self._incremental = incremental_lookup
        self.name = "srjf-calibrated" if continuous_calibration else "srjf"

    @property
    def fairness_lambda(self) -> float:
        return self._lambda

    @property
    def continuous_calibration(self) -> bool:
        return self._continuous

    def _base_score(self, num_tokens: int, cached_tokens: int) -> float:
        if self._estimator is None:
            return JCTEstimator.proxy(num_tokens, cached_tokens)
        return self._estimator.estimate(num_tokens, cached_tokens)

    def on_submit(self, request: EngineRequest, kv: KVCacheManager, now: float) -> None:
        request.initial_cached_tokens = kv.lookup(request.block_hashes)

    def _calibrate(self, request: EngineRequest, kv: KVCacheManager) -> tuple[int, float]:
        """Return (cached tokens, base score) for a request, memoised per cache version.

        A memo from an older cache version is not discarded: its match length
        seeds :meth:`~repro.kvcache.manager.KVCacheManager.lookup_from`, which
        backtracks / extends incrementally from the old match instead of
        re-walking the request's hash chain from the root.  The cached-token
        count (and hence the score) is identical to a fresh lookup; only the
        O(queue × prefix-length) rescan the continuous calibration otherwise
        pays on every cache change is gone.

        On a tiered manager the calibration resolves the whole hierarchy
        (:meth:`~repro.kvcache.manager.KVCacheManager.lookup_with_tiers`):
        tokens resident in the host or cluster tiers count as cached — they
        will be streamed, not recomputed — and the modelled transfer time is
        added back to the score (in seconds for the fitted JCT model, in
        compute-token equivalents for the paper's cache-miss-token proxy), so
        a host-resident prefix ranks between a GPU hit and a full miss.
        """
        if not self._continuous:
            cached = request.initial_cached_tokens
            return cached, self._base_score(request.num_tokens, cached)
        version = kv.calibration_version
        memoised = request.calibration(version)
        if memoised is not None:
            return memoised
        if kv.has_tiers:
            lookup = kv.lookup_with_tiers(request.block_hashes)
            cached = lookup.total_tokens
            score = self._base_score(request.num_tokens, cached)
            if self._estimator is None:
                score += lookup.penalty_tokens
            else:
                score += lookup.load_seconds
            request.store_calibration(version, cached, score)
            return cached, score
        stale = request.last_calibration() if self._incremental else None
        if stale is not None:
            cached = kv.lookup_from(request.block_hashes, stale[1] // kv.block_size)
        else:
            cached = kv.lookup(request.block_hashes)
        score = self._base_score(request.num_tokens, cached)
        request.store_calibration(version, cached, score)
        return cached, score

    def select(self, queue: list[EngineRequest], kv: KVCacheManager,
               now: float) -> SchedulerDecision | None:
        if not queue:
            return None
        best: SchedulerDecision | None = None
        for request in queue:
            cached, base = self._calibrate(request, kv)
            score = base - self._lambda * request.queueing_time(now)
            if (best is None or score < best.score
                    or (score == best.score and request.request_id < best.request.request_id)):
                best = SchedulerDecision(request=request, score=score, cached_tokens=cached)
        return best


def make_scheduler(policy: str, *, estimator: JCTEstimator | None = None,
                   fairness_lambda: float = DEFAULT_FAIRNESS_LAMBDA,
                   incremental_lookup: bool = True) -> Scheduler:
    """Build a scheduler by policy name.

    Args:
        policy: ``"fcfs"``, ``"srjf"`` (JCT at arrival time), or
            ``"srjf-calibrated"`` (PrefillOnly's continuous calibration).
        estimator: Optional fitted JCT model for the SRJF variants.
        fairness_lambda: λ for the SRJF variants.
        incremental_lookup: See :class:`SRJFScheduler`.
    """
    if policy == "fcfs":
        return FCFSScheduler()
    if policy == "srjf":
        return SRJFScheduler(
            estimator=estimator, fairness_lambda=fairness_lambda, continuous_calibration=False
        )
    if policy == "srjf-calibrated":
        return SRJFScheduler(
            estimator=estimator, fairness_lambda=fairness_lambda, continuous_calibration=True,
            incremental_lookup=incremental_lookup,
        )
    raise SchedulingError(
        f"unknown scheduling policy {policy!r}; expected 'fcfs', 'srjf', or 'srjf-calibrated'"
    )
