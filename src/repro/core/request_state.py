"""Engine-side request state.

An :class:`EngineRequest` wraps a workload :class:`~repro.workloads.trace.Request`
with everything the engine tracks about it: its block hashes for the prefix
cache, when it entered the queue, its lifecycle state, and the memoised JCT
calibration (so continuous calibration only recomputes a request's score when
the prefix cache has actually changed since the last computation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.workloads.trace import Request


class RequestState(enum.Enum):
    """Lifecycle of a request inside an engine instance."""

    WAITING = "waiting"
    RUNNING = "running"
    FINISHED = "finished"
    REJECTED = "rejected"


@dataclass
class EngineRequest:
    """One request as tracked by an engine instance."""

    request: Request
    block_hashes: tuple[int, ...]
    enqueue_time: float
    state: RequestState = RequestState.WAITING
    initial_cached_tokens: int = 0
    start_time: float | None = None
    finish_time: float | None = None
    cached_tokens_at_start: int = 0
    rejection_reason: str | None = None
    #: Memoised calibration: (prefix-cache version, cached tokens, base score).
    _calibration: tuple[int, int, float] | None = field(default=None, repr=False)

    @property
    def request_id(self) -> int:
        return self.request.request_id

    @property
    def user_id(self) -> str:
        return self.request.user_id

    @property
    def num_tokens(self) -> int:
        return self.request.num_tokens

    def queueing_time(self, now: float) -> float:
        """How long the request has been waiting at time ``now``."""
        return max(now - self.enqueue_time, 0.0)

    # ------------------------------------------------- calibration memoisation

    def calibration(self, cache_version: int) -> tuple[int, float] | None:
        """Return (cached tokens, base score) if computed for ``cache_version``."""
        if self._calibration is not None and self._calibration[0] == cache_version:
            return self._calibration[1], self._calibration[2]
        return None

    def last_calibration(self) -> tuple[int, int, float] | None:
        """The most recent memo — (version, cached tokens, score).

        Unlike :meth:`calibration` this returns the memo even when the cache
        version has moved on; the scheduler uses the old match as the starting
        hint for an incremental re-lookup instead of re-walking from the root.
        """
        return self._calibration

    def store_calibration(self, cache_version: int, cached_tokens: int, score: float) -> None:
        """Memoise one calibration result."""
        self._calibration = (cache_version, cached_tokens, score)
