"""Job-completion-time (JCT) profiling and estimation.

Because a prefill-only request always produces exactly one output token, its
JCT is a deterministic function of how many input tokens it has and how many of
those already sit in the prefix cache.  The paper obtains this function by an
offline profiling pass over (input length, cached length) pairs at 1,000-token
granularity, fits a small linear model, and notes that the *number of cache-miss
tokens* alone is already an excellent proxy (Pearson correlation 0.987 on an
A100 with Qwen-32B).  This module reproduces both: the profiler sweeps the
latency model over the grid, the estimator fits the regression, and
:func:`jct_pearson_correlation` reproduces the correlation measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.latency import LatencyModel
from repro.model.memory import PrefillMode
from repro.perf import memo

#: Interned fitted estimators keyed on everything that determines the fit.
#: Every replica of a fitted-JCT fleet profiles the identical grid; interning
#: turns replica N's profiling pass into a dict hit.  Estimators are never
#: mutated after fitting, so sharing one instance is safe.
_ESTIMATOR_MEMO: dict[tuple, "JCTEstimator"] = {}
memo.register_cache(_ESTIMATOR_MEMO.clear)


@dataclass(frozen=True)
class JCTProfile:
    """Raw profiling samples: one JCT measurement per (input, cached) pair."""

    input_tokens: tuple[int, ...]
    cached_tokens: tuple[int, ...]
    jct_seconds: tuple[float, ...]

    def __len__(self) -> int:
        return len(self.jct_seconds)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            np.asarray(self.input_tokens, dtype=np.float64),
            np.asarray(self.cached_tokens, dtype=np.float64),
            np.asarray(self.jct_seconds, dtype=np.float64),
        )


class JCTProfiler:
    """Offline profiling pass that measures JCT over an (input, cached) grid.

    In the real system this forwards synthetic requests through the engine; in
    this reproduction the "measurement" is the latency model, optionally with
    multiplicative noise so the regression is exercised realistically.
    """

    def __init__(self, latency_model: LatencyModel, *, mode: PrefillMode = PrefillMode.HYBRID,
                 chunk_tokens: int = 2048, tensor_parallel: int = 1,
                 pipeline_parallel: int = 1) -> None:
        self._latency = latency_model
        self._mode = mode
        self._chunk_tokens = chunk_tokens
        self._tensor_parallel = tensor_parallel
        self._pipeline_parallel = pipeline_parallel

    def measure(self, num_input_tokens: int, num_cached_tokens: int) -> float:
        """One JCT measurement (seconds)."""
        uncached = max(num_input_tokens - num_cached_tokens, 0)
        timing = self._latency.prefill_time(
            uncached,
            num_cached_tokens=num_cached_tokens,
            mode=self._mode,
            chunk_tokens=self._chunk_tokens,
            tensor_parallel=self._tensor_parallel,
            pipeline_parallel=self._pipeline_parallel,
        )
        return timing.total

    def profile(self, max_input_tokens: int, *, granularity: int = 1000,
                noise_std: float = 0.0, seed: int = 0) -> JCTProfile:
        """Sweep the (input, cached) grid up to ``max_input_tokens``.

        Args:
            max_input_tokens: The user-provided maximum input length (MIL).
            granularity: Grid spacing in tokens (the paper uses 1,000).
            noise_std: Relative measurement noise (0 for the pure model).
            seed: RNG seed for the noise.
        """
        if max_input_tokens <= 0:
            raise ValueError("max_input_tokens must be positive")
        rng = np.random.default_rng(seed)
        inputs: list[int] = []
        cached: list[int] = []
        jcts: list[float] = []
        grid = list(range(granularity, max_input_tokens + 1, granularity))
        if not grid or grid[-1] != max_input_tokens:
            grid.append(max_input_tokens)
        for num_input in grid:
            for num_cached in range(0, num_input + 1, granularity):
                measured = self.measure(num_input, num_cached)
                if noise_std > 0.0:
                    measured *= float(1.0 + rng.normal(0.0, noise_std))
                inputs.append(num_input)
                cached.append(num_cached)
                jcts.append(max(measured, 0.0))
        return JCTProfile(tuple(inputs), tuple(cached), tuple(jcts))


class JCTEstimator:
    """Linear JCT model fitted on a :class:`JCTProfile`.

    The model is ``jct ≈ a * uncached_tokens + b * cached_tokens + c``, fitted
    by least squares.  ``estimate`` evaluates it; ``proxy`` returns the paper's
    default cache-miss-token proxy (which only needs to rank requests, so its
    unit is tokens rather than seconds).
    """

    def __init__(self, coef_uncached: float, coef_cached: float, intercept: float) -> None:
        self.coef_uncached = coef_uncached
        self.coef_cached = coef_cached
        self.intercept = intercept

    @classmethod
    def fit(cls, profile: JCTProfile) -> "JCTEstimator":
        """Fit the linear model on profiling samples."""
        inputs, cached, jcts = profile.as_arrays()
        uncached = inputs - cached
        design = np.stack([uncached, cached, np.ones_like(uncached)], axis=1)
        coeffs, *_ = np.linalg.lstsq(design, jcts, rcond=None)
        return cls(float(coeffs[0]), float(coeffs[1]), float(coeffs[2]))

    @classmethod
    def from_latency_model(cls, latency_model: LatencyModel, max_input_tokens: int, *,
                           mode: PrefillMode = PrefillMode.HYBRID,
                           granularity: int = 1000,
                           tensor_parallel: int = 1,
                           pipeline_parallel: int = 1,
                           chunk_tokens: int = 2048) -> "JCTEstimator":
        """Profile the latency model and fit in one step (the engine startup path).

        Memoized per engine configuration (model, GPU, interconnect, MIL,
        execution knobs): the profiling grid is deterministic, so every
        replica of a fleet would fit the identical estimator.
        """
        if memo.memo_enabled():
            key = (latency_model.model, latency_model.gpu, latency_model.interconnect,
                   max_input_tokens, mode, granularity,
                   tensor_parallel, pipeline_parallel, chunk_tokens)
            cached = _ESTIMATOR_MEMO.get(key)
            if cached is None:
                cached = cls._fit_uncached(
                    latency_model, max_input_tokens, mode=mode, granularity=granularity,
                    tensor_parallel=tensor_parallel, pipeline_parallel=pipeline_parallel,
                    chunk_tokens=chunk_tokens,
                )
                _ESTIMATOR_MEMO[key] = cached
            return cached
        return cls._fit_uncached(
            latency_model, max_input_tokens, mode=mode, granularity=granularity,
            tensor_parallel=tensor_parallel, pipeline_parallel=pipeline_parallel,
            chunk_tokens=chunk_tokens,
        )

    @classmethod
    def _fit_uncached(cls, latency_model: LatencyModel, max_input_tokens: int, *,
                      mode: PrefillMode, granularity: int,
                      tensor_parallel: int, pipeline_parallel: int,
                      chunk_tokens: int) -> "JCTEstimator":
        profiler = JCTProfiler(
            latency_model,
            mode=mode,
            chunk_tokens=chunk_tokens,
            tensor_parallel=tensor_parallel,
            pipeline_parallel=pipeline_parallel,
        )
        profile = profiler.profile(max_input_tokens, granularity=granularity)
        return cls.fit(profile)

    def estimate(self, num_input_tokens: int, num_cached_tokens: int) -> float:
        """Estimated JCT in seconds."""
        uncached = max(num_input_tokens - num_cached_tokens, 0)
        return max(
            self.coef_uncached * uncached + self.coef_cached * num_cached_tokens + self.intercept,
            0.0,
        )

    @staticmethod
    def proxy(num_input_tokens: int, num_cached_tokens: int) -> float:
        """The paper's default JCT proxy: the number of cache-miss tokens."""
        return float(max(num_input_tokens - num_cached_tokens, 0))

    def r_squared(self, profile: JCTProfile) -> float:
        """Coefficient of determination of the fit on ``profile``."""
        inputs, cached, jcts = profile.as_arrays()
        predicted = np.array([
            self.estimate(int(i), int(c)) for i, c in zip(inputs, cached)
        ])
        residual = float(np.sum((jcts - predicted) ** 2))
        total = float(np.sum((jcts - jcts.mean()) ** 2))
        if total == 0.0:
            return 1.0
        return 1.0 - residual / total


def jct_pearson_correlation(profile: JCTProfile) -> float:
    """Pearson correlation between true JCT and the cache-miss-token proxy.

    Reproduces the paper's §6.3 measurement (0.987 on A100 / Qwen-32B-FP8).
    """
    inputs, cached, jcts = profile.as_arrays()
    proxy = inputs - cached
    if np.allclose(proxy.std(), 0.0) or np.allclose(jcts.std(), 0.0):
        return 1.0
    return float(np.corrcoef(proxy, jcts)[0, 1])
