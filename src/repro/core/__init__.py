"""PrefillOnly core: the paper's primary contribution.

This package contains the pieces that make PrefillOnly PrefillOnly:

* :mod:`repro.core.jct` — job-completion-time profiling and estimation
  (offline profile over (input tokens, cached tokens) pairs, linear-regression
  fit, and the cache-miss-token proxy the paper uses by default);
* :mod:`repro.core.scheduler` — FCFS and SRJF schedulers, plus SRJF with
  continuous JCT calibration and the fairness offset λ (Algorithm 1);
* :mod:`repro.core.hybrid_prefill` — the hybrid prefilling planner built on the
  computation-graph grouping pass;
* :mod:`repro.core.profile_run` — the startup profile run that turns a
  user-provided maximum input length into a KV-cache budget;
* :mod:`repro.core.engine` — the engine specification and the simulated engine
  instance, with :func:`repro.core.engine.prefillonly_engine` building the
  paper's configuration (hybrid prefilling + suffix discarding + calibrated
  SRJF).
"""

from repro.core.jct import JCTEstimator, JCTProfiler, JCTProfile, jct_pearson_correlation
from repro.core.scheduler import (
    Scheduler,
    FCFSScheduler,
    SRJFScheduler,
    SchedulerDecision,
    make_scheduler,
)
from repro.core.hybrid_prefill import HybridPrefillPlanner, HybridPrefillPlan
from repro.core.profile_run import ProfileRunResult, run_profile
from repro.core.engine import (
    EngineSpec,
    EngineInstance,
    FinishedRequest,
    EngineRequest,
    prefillonly_engine_spec,
    build_engine,
)

__all__ = [
    "JCTEstimator",
    "JCTProfiler",
    "JCTProfile",
    "jct_pearson_correlation",
    "Scheduler",
    "FCFSScheduler",
    "SRJFScheduler",
    "SchedulerDecision",
    "make_scheduler",
    "HybridPrefillPlanner",
    "HybridPrefillPlan",
    "ProfileRunResult",
    "run_profile",
    "EngineSpec",
    "EngineInstance",
    "FinishedRequest",
    "EngineRequest",
    "prefillonly_engine_spec",
    "build_engine",
]
