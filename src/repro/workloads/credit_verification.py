"""Credit verification workload (Table 1, second row).

The scenario from §7.1 of the paper: a bank asks the LLM to verify one user's
credit from roughly ten months of credit history.  Each user issues a single
request of 40,000-60,000 tokens, so there is essentially no prefix reuse and
the workload stresses the engine's maximum input length and long-request
throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.trace import Request, TokenSegment, TokenSequence, WorkloadTrace

_SYSTEM_PROMPT_ID = 2
_HISTORY_BASE = 20_000_000
_QUESTION_BASE = 30_000_000


@dataclass(frozen=True)
class CreditVerificationWorkload:
    """Generator for the credit verification trace.

    Attributes mirror the paper's dataset parameters: 60 users, one request per
    user, ten months of history at 4,000-6,000 tokens per month.
    """

    num_users: int = 60
    months_of_history: int = 10
    month_min_tokens: int = 4_000
    month_max_tokens: int = 6_000
    system_prompt_tokens: int = 256
    question_tokens: int = 32
    seed: int = 0

    name = "credit-verification"

    def __post_init__(self) -> None:
        if self.num_users <= 0 or self.months_of_history <= 0:
            raise WorkloadError("credit verification needs at least one user and one month")
        if self.month_min_tokens > self.month_max_tokens:
            raise WorkloadError("month_min_tokens must not exceed month_max_tokens")

    def history_length(self, rng: np.random.Generator) -> int:
        """Draw one user's total credit-history length in tokens."""
        months = rng.integers(self.month_min_tokens, self.month_max_tokens + 1,
                              size=self.months_of_history)
        return int(months.sum())

    def generate(self) -> WorkloadTrace:
        """Generate the full trace (one request per user)."""
        rng = np.random.default_rng(self.seed)
        requests: list[Request] = []
        for user_index in range(self.num_users):
            history_tokens = self.history_length(rng)
            sequence = TokenSequence([
                TokenSegment(_SYSTEM_PROMPT_ID, self.system_prompt_tokens),
                TokenSegment(_HISTORY_BASE + user_index, history_tokens),
                TokenSegment(_QUESTION_BASE + user_index, self.question_tokens),
            ])
            requests.append(Request(
                request_id=user_index,
                user_id=f"applicant-{user_index:04d}",
                sequence=sequence,
                allowed_outputs=("Approve", "Reject"),
                metadata={
                    "history_tokens": history_tokens,
                    "months_of_history": self.months_of_history,
                },
            ))
        description = {
            "why": "evaluate PrefillOnly under long input length",
            "months_of_history": self.months_of_history,
            "history_token_range": (
                self.months_of_history * self.month_min_tokens,
                self.months_of_history * self.month_max_tokens,
            ),
        }
        return WorkloadTrace(name=self.name, requests=requests, description=description)
