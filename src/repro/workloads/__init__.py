"""Workload substrate: synthetic prefill-only request traces and trace files.

The paper evaluates on two simulated datasets (its Table 1): a post
recommendation workload with heavy prefix reuse and moderate lengths, and a
credit verification workload with very long inputs and no reuse.  This package
generates both with the paper's token-length distributions, plus the plumbing
they share:

* a compact token-sequence representation (:mod:`repro.workloads.trace`), so
  60,000-token requests do not materialise 60,000 integers;
* a name-based generator registry (:mod:`repro.workloads.registry`) that
  raises :class:`repro.errors.UnknownWorkloadError` — carrying the valid
  names — on a bad lookup, and accepts new generators via
  :func:`register_workload`;
* a multi-tenant mixer (:mod:`repro.workloads.mixer`) that interleaves
  weighted, namespaced tenant streams with per-tenant SLOs;
* trace recording and bit-for-bit replay (:mod:`repro.workloads.tracefile`)
  in the ``repro-trace/v1`` JSONL format: line 1 is a header object
  (``{"schema": "repro-trace/v1", "name", "seed", "num_requests",
  "description"}``) and every further line is one request
  (``{"request_id", "user_id", "arrival_time", "allowed_outputs",
  "segments": [[content_id, length], ...], "metadata"}``) in arrival order —
  floats round-trip exactly, so a replayed trace reproduces the original run
  event for event;
* a deterministic synthetic tokenizer for the examples.

The scenario cookbook (``docs/SCENARIOS.md``) shows how these compose with the
arrival processes in :mod:`repro.simulation.arrival` into runnable scenarios.
"""

from repro.workloads.trace import TokenSegment, TokenSequence, Request, WorkloadTrace
from repro.workloads.tokenizer import SyntheticTokenizer
from repro.workloads.post_recommendation import PostRecommendationWorkload
from repro.workloads.credit_verification import CreditVerificationWorkload
from repro.workloads.registry import get_workload, list_workloads, register_workload
from repro.workloads.mixer import MixedTrace, TenantSpec, mix_tenants
from repro.workloads.tracefile import TRACE_SCHEMA, load_trace, save_trace

__all__ = [
    "TokenSegment",
    "TokenSequence",
    "Request",
    "WorkloadTrace",
    "SyntheticTokenizer",
    "PostRecommendationWorkload",
    "CreditVerificationWorkload",
    "get_workload",
    "list_workloads",
    "register_workload",
    "TenantSpec",
    "MixedTrace",
    "mix_tenants",
    "TRACE_SCHEMA",
    "save_trace",
    "load_trace",
]
