"""Workload substrate: synthetic prefill-only request traces.

The paper evaluates on two simulated datasets (its Table 1): a post
recommendation workload with heavy prefix reuse and moderate lengths, and a
credit verification workload with very long inputs and no reuse.  This package
generates both with the paper's token-length distributions, plus the plumbing
they share: a compact token-sequence representation (so 60,000-token requests
do not materialise 60,000 integers), a deterministic synthetic tokenizer for
the examples, and the request/trace containers the simulator consumes.
"""

from repro.workloads.trace import TokenSegment, TokenSequence, Request, WorkloadTrace
from repro.workloads.tokenizer import SyntheticTokenizer
from repro.workloads.post_recommendation import PostRecommendationWorkload
from repro.workloads.credit_verification import CreditVerificationWorkload
from repro.workloads.registry import get_workload, list_workloads

__all__ = [
    "TokenSegment",
    "TokenSequence",
    "Request",
    "WorkloadTrace",
    "SyntheticTokenizer",
    "PostRecommendationWorkload",
    "CreditVerificationWorkload",
    "get_workload",
    "list_workloads",
]
