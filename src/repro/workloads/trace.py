"""Request and trace containers shared by all workloads.

Requests carry their token content as a list of :class:`TokenSegment` pieces
rather than as raw token ids: a segment is a contiguous run of tokens with a
content identifier (e.g. "user 7's profile", "post 1234").  Two requests that
start with the same segments share a prefix, and the block hashes derived from
the segment structure are identical for the shared part — which is all the
prefix cache needs.  This keeps a 60,000-token request at a handful of Python
objects instead of 60,000 integers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.kvcache.block import GLOBAL_HASH_CHAIN_CACHE, ROOT_HASH, hash_chain
from repro.perf import memo


#: Memoized whole-sequence hash chains keyed on ``(block_size, segments)``.
#: Workload generators build a fresh :class:`TokenSequence` per request even
#: when the token content repeats (replays, retries, multi-point sweeps that
#: regenerate the trace), so the per-instance cache alone still re-walks
#: identical sequences; this table makes each distinct sequence hash once per
#: process.  Cleared wholesale when full — residency is a speed concern only.
_SEQUENCE_HASH_MEMO: dict[tuple, tuple[int, ...]] = {}
_SEQUENCE_HASH_MEMO_MAX = 65_536
memo.register_cache(_SEQUENCE_HASH_MEMO.clear)


@dataclass(frozen=True)
class TokenSegment:
    """A contiguous run of tokens with a single content identity.

    Attributes:
        content_id: Identifier of the content the tokens encode.  Two segments
            with the same ``content_id`` represent the same token values.
        length: Number of tokens in the segment.
    """

    content_id: int
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise WorkloadError("segment length must be positive")


class TokenSequence:
    """An ordered list of segments plus cached per-block content hashes."""

    def __init__(self, segments: list[TokenSegment] | tuple[TokenSegment, ...]) -> None:
        if not segments:
            raise WorkloadError("a token sequence needs at least one segment")
        self._segments = tuple(segments)
        self._num_tokens = sum(segment.length for segment in self._segments)
        self._hash_cache: dict[int, tuple[int, ...]] = {}

    @property
    def segments(self) -> tuple[TokenSegment, ...]:
        return self._segments

    @property
    def num_tokens(self) -> int:
        """Total token count of the sequence."""
        return self._num_tokens

    def __len__(self) -> int:
        return self._num_tokens

    def block_hashes(self, block_size: int) -> tuple[int, ...]:
        """Chained content hashes of the sequence's full blocks.

        Each block's content tuple is the list of (content_id, offset-in-segment,
        piece-length) spans that cover the block, so two sequences produce the
        same hash for block *i* exactly when they agree token-for-token on the
        first ``(i + 1) * block_size`` tokens.
        """
        if block_size <= 0:
            raise WorkloadError("block_size must be positive")
        cached = self._hash_cache.get(block_size)
        if cached is not None:
            return cached

        interned = memo.memo_enabled()
        memo_key = None
        if interned:
            memo_key = (block_size, self._segments)
            shared = _SEQUENCE_HASH_MEMO.get(memo_key)
            if shared is not None:
                self._hash_cache[block_size] = shared
                return shared

        hashes: list[int] = []
        parent = ROOT_HASH
        segment_index = 0
        offset_in_segment = 0
        num_full_blocks = self._num_tokens // block_size
        for _ in range(num_full_blocks):
            remaining = block_size
            pieces: list[tuple[int, int, int]] = []
            while remaining > 0:
                segment = self._segments[segment_index]
                take = min(remaining, segment.length - offset_in_segment)
                pieces.append((segment.content_id, offset_in_segment, take))
                remaining -= take
                offset_in_segment += take
                if offset_in_segment == segment.length:
                    segment_index += 1
                    offset_in_segment = 0
            # The interned chain is bit-identical to hash_chain (it stores
            # exactly hash((parent, content))); interning lets sequences that
            # share a prefix reuse each other's per-block hashes.
            if interned:
                parent = GLOBAL_HASH_CHAIN_CACHE.chain(parent, tuple(pieces))
            else:
                parent = hash_chain(parent, tuple(pieces))
            hashes.append(parent)

        result = tuple(hashes)
        self._hash_cache[block_size] = result
        if interned:
            if len(_SEQUENCE_HASH_MEMO) >= _SEQUENCE_HASH_MEMO_MAX:
                _SEQUENCE_HASH_MEMO.clear()
            _SEQUENCE_HASH_MEMO[memo_key] = result
        return result

    def shared_prefix_tokens(self, other: "TokenSequence") -> int:
        """Number of leading tokens this sequence shares with ``other``.

        Used by workload-level analysis (e.g. the theoretical best-case cache
        hit rate); the engines themselves only ever see block hashes.
        """
        shared = 0
        for mine, theirs in zip(self._segments, other._segments):
            if mine.content_id != theirs.content_id:
                break
            take = min(mine.length, theirs.length)
            shared += take
            if mine.length != theirs.length:
                break
        return shared


@dataclass
class Request:
    """One prefill-only request.

    Attributes:
        request_id: Unique id within a trace.
        user_id: Originating user, used for user-id-based routing.
        sequence: Token content.
        allowed_outputs: The caller-provided list of acceptable output tokens
            (e.g. ``("Yes", "No")``); the engine samples only from this list.
        arrival_time: Assigned by the arrival process (seconds).
        metadata: Free-form workload annotations (post id, month count, ...).
    """

    request_id: int
    user_id: str
    sequence: TokenSequence
    allowed_outputs: tuple[str, ...] = ("Yes", "No")
    arrival_time: float = 0.0
    metadata: dict = field(default_factory=dict)

    @property
    def num_tokens(self) -> int:
        return self.sequence.num_tokens

    def block_hashes(self, block_size: int) -> tuple[int, ...]:
        return self.sequence.block_hashes(block_size)


@dataclass
class WorkloadTrace:
    """A complete workload: an ordered list of requests plus its description."""

    name: str
    requests: list[Request]
    description: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.requests:
            raise WorkloadError(f"workload {self.name!r} generated no requests")

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def total_tokens(self) -> int:
        """Total input tokens across the trace (Table 1's last column)."""
        return sum(request.num_tokens for request in self.requests)

    @property
    def num_users(self) -> int:
        return len({request.user_id for request in self.requests})

    @property
    def max_request_tokens(self) -> int:
        return max(request.num_tokens for request in self.requests)

    @property
    def mean_request_tokens(self) -> float:
        return self.total_tokens / len(self.requests)

    def summary(self) -> dict:
        """Table-1 style summary of the trace."""
        lengths = sorted(request.num_tokens for request in self.requests)
        summary = {
            "dataset": self.name,
            "num_users": self.num_users,
            "num_requests": len(self.requests),
            "min_request_tokens": lengths[0],
            "max_request_tokens": lengths[-1],
            "mean_request_tokens": round(self.mean_request_tokens, 1),
            "total_tokens": self.total_tokens,
        }
        summary.update(self.description)
        return summary
