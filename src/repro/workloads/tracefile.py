"""Trace recording and bit-for-bit replay (the ``repro-trace/v1`` JSONL format).

Any request list the simulator can consume — a generated workload, a
multi-tenant mix, or the arrival-time-stamped output of an arrival process —
can be written to a JSONL file and loaded back **identically**: the same
request ids, user ids, token segments, metadata, and (crucially) the exact
IEEE-754 arrival times, because JSON serialises Python floats via ``repr`` and
``repr`` round-trips every finite double.  Replaying a recorded trace through
the simulator therefore reproduces the original run event for event.

File format (one JSON object per line):

* **Line 1 — header**::

      {"schema": "repro-trace/v1", "name": "...", "seed": 0,
       "num_requests": 120, "description": {...}}

  ``name``/``seed``/``description`` are free-form provenance (the scenario
  engine stores the scenario name and seed here); ``num_requests`` is checked
  on load.

* **Every further line — one request**::

      {"request_id": 3, "user_id": "tenant-a:user-0007",
       "arrival_time": 1.2500000000000002,
       "allowed_outputs": ["Yes", "No"],
       "segments": [[1, 128], [10007, 14213], [1000351, 150]],
       "metadata": {"tenant": "tenant-a", "post_index": 1}}

  ``segments`` is the request's token content as ``[content_id, length]``
  pairs (see :class:`repro.workloads.trace.TokenSegment`); requests appear in
  arrival-time order.

The format is line-oriented so traces stream, diff, and concatenate cleanly.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ScenarioError
from repro.workloads.trace import Request, TokenSegment, TokenSequence

__all__ = ["TRACE_SCHEMA", "save_trace", "load_trace"]

#: Schema identifier written to (and required in) every trace header.
TRACE_SCHEMA = "repro-trace/v1"


def _request_to_dict(request: Request) -> dict:
    return {
        "request_id": request.request_id,
        "user_id": request.user_id,
        "arrival_time": request.arrival_time,
        "allowed_outputs": list(request.allowed_outputs),
        "segments": [
            [segment.content_id, segment.length]
            for segment in request.sequence.segments
        ],
        "metadata": request.metadata,
    }


def _request_from_dict(row: dict, *, line: int) -> Request:
    try:
        return Request(
            request_id=int(row["request_id"]),
            user_id=str(row["user_id"]),
            sequence=TokenSequence([
                TokenSegment(int(content_id), int(length))
                for content_id, length in row["segments"]
            ]),
            allowed_outputs=tuple(row["allowed_outputs"]),
            arrival_time=float(row["arrival_time"]),
            metadata=dict(row.get("metadata", {})),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ScenarioError(f"trace line {line}: malformed request record ({exc})") from None


def save_trace(path: str | Path, requests: list[Request], *,
               name: str = "trace", seed: int | None = None,
               description: dict | None = None) -> Path:
    """Write ``requests`` (with arrival times already assigned) as JSONL.

    Args:
        path: Destination file (parent directories are created).
        requests: The request list, in the order the simulator will see it.
        name / seed / description: Provenance stored in the header line.

    Returns:
        The path written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "schema": TRACE_SCHEMA,
        "name": name,
        "seed": seed,
        "num_requests": len(requests),
        "description": description or {},
    }
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for request in requests:
            handle.write(json.dumps(_request_to_dict(request)) + "\n")
    return path


def load_trace(path: str | Path) -> tuple[dict, list[Request]]:
    """Load a ``repro-trace/v1`` JSONL file.

    Returns:
        ``(header, requests)`` — the header dict and the request list in file
        order (which is arrival order for traces written by :func:`save_trace`).

    Raises:
        ScenarioError: if the file is missing, has the wrong schema, is
            malformed, or its request count disagrees with the header.
    """
    path = Path(path)
    if not path.exists():
        raise ScenarioError(f"trace file not found: {path}")
    requests: list[Request] = []
    header: dict | None = None
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ScenarioError(f"trace line {line_number}: invalid JSON ({exc})") from None
            if header is None:
                if row.get("schema") != TRACE_SCHEMA:
                    raise ScenarioError(
                        f"{path}: expected schema {TRACE_SCHEMA!r}, "
                        f"got {row.get('schema')!r}"
                    )
                header = row
                continue
            requests.append(_request_from_dict(row, line=line_number))
    if header is None:
        raise ScenarioError(f"{path}: empty trace file")
    expected = header.get("num_requests")
    if expected is not None and expected != len(requests):
        raise ScenarioError(
            f"{path}: header declares {expected} requests, file has {len(requests)}"
        )
    return header, requests
