"""Multi-tenant workload mixing.

Production fleets rarely serve one workload: the paper's two applications
(post recommendation, credit verification) would share a deployment, each with
its own traffic shape and its own latency SLO.  :func:`mix_tenants` builds that
combined stream from per-tenant specs:

* each tenant generates its own workload trace (any registered workload, with
  parameter overrides) and assigns arrival times with its own arrival process;
* ``weight`` subsamples a tenant's trace, so one tenant can be a sliver of the
  traffic without shrinking its generator parameters;
* tenant streams are *namespaced* — user ids get a ``"tenant:"`` prefix and
  token content ids are offset per tenant — so two tenants running the same
  workload never share prefix-cache entries (they are different customers);
* the streams are merged into one request list sorted by arrival time, with
  ``metadata["tenant"]`` set on every request and globally unique request ids.

Every request carries its tenant in ``metadata["tenant"]`` — the durable
channel that survives trace record/replay and is what the scenario engine
groups per-tenant summaries by.  The result also carries a ``tenant_of``
map (request id → tenant name) as a convenience for callers holding the
in-memory mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.registry import get_workload
from repro.workloads.trace import Request, TokenSegment, TokenSequence

if TYPE_CHECKING:  # avoid a runtime workloads -> simulation import cycle
    from repro.simulation.arrival import ArrivalProcess

__all__ = ["CONTENT_ID_STRIDE", "TenantSpec", "MixedTrace", "mix_tenants"]

#: Content-id offset between tenants; larger than any id a built-in workload
#: generator emits, so namespaced tenants can never collide in the prefix cache.
CONTENT_ID_STRIDE = 100_000_000


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a mixed workload.

    Attributes:
        name: Tenant name (used in reports, user-id prefixes, and metadata).
        workload: Registered workload name (see
            :func:`repro.workloads.registry.list_workloads`).
        arrival: Arrival process that stamps this tenant's request times.
        workload_params: Generator parameter overrides (e.g. ``num_users=6``).
        weight: Fraction of the tenant's generated trace to include, in
            ``(0, 1]``; subsampling is deterministic given the mix seed.
        slo_latency_s: Optional per-tenant latency SLO (seconds); consumed by
            the scenario engine's per-tenant summaries.
    """

    name: str
    workload: str
    arrival: "ArrivalProcess"
    workload_params: dict = field(default_factory=dict)
    weight: float = 1.0
    slo_latency_s: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("tenant name must be non-empty")
        if not 0 < self.weight <= 1:
            raise WorkloadError(f"tenant {self.name!r}: weight must be in (0, 1]")
        if self.slo_latency_s is not None and self.slo_latency_s <= 0:
            raise WorkloadError(f"tenant {self.name!r}: slo_latency_s must be positive")


@dataclass
class MixedTrace:
    """A merged multi-tenant request stream plus its bookkeeping.

    Attributes:
        name: Mix name (for reports).
        requests: All tenants' requests, sorted by arrival time, with globally
            unique request ids and ``metadata["tenant"]`` set.
        tenants: The specs the mix was built from, in declaration order.
        tenant_of: Request id → tenant name (for post-simulation grouping).
    """

    name: str
    requests: list[Request]
    tenants: tuple[TenantSpec, ...]
    tenant_of: dict[int, str]

    def __len__(self) -> int:
        return len(self.requests)

    def per_tenant_counts(self) -> dict[str, int]:
        """Number of requests each tenant contributed."""
        counts = {tenant.name: 0 for tenant in self.tenants}
        for tenant_name in self.tenant_of.values():
            counts[tenant_name] += 1
        return counts


def _namespace(request: Request, tenant: TenantSpec, offset: int) -> Request:
    """Copy a request into a tenant's namespace (user ids, content ids, metadata)."""
    return Request(
        request_id=request.request_id,
        user_id=f"{tenant.name}:{request.user_id}",
        sequence=TokenSequence([
            TokenSegment(segment.content_id + offset, segment.length)
            for segment in request.sequence.segments
        ]),
        allowed_outputs=request.allowed_outputs,
        metadata={**request.metadata, "tenant": tenant.name},
    )


def mix_tenants(tenants: list[TenantSpec] | tuple[TenantSpec, ...], *,
                name: str = "mix", seed: int = 0) -> MixedTrace:
    """Generate, weight, namespace, time-stamp, and merge the tenants' traffic.

    Args:
        tenants: At least one :class:`TenantSpec`; names must be unique.
        name: Name of the resulting mix.
        seed: Seed for the (deterministic) weight subsampling.  Arrival-time
            randomness is owned by each tenant's arrival process and its own
            seed, so the same spec always produces the same mix.

    Raises:
        WorkloadError: on duplicate tenant names or an empty tenant list.
    """
    if not tenants:
        raise WorkloadError("a mix needs at least one tenant")
    names = [tenant.name for tenant in tenants]
    if len(set(names)) != len(names):
        raise WorkloadError(f"duplicate tenant names in mix: {names}")

    merged: list[tuple[float, int, int, Request]] = []
    for tenant_index, tenant in enumerate(tenants):
        trace = get_workload(tenant.workload, **tenant.workload_params)
        requests = list(trace.requests)
        if tenant.weight < 1.0:
            keep = max(1, round(tenant.weight * len(requests)))
            # Salted entropy keeps this stream independent of the tenant's
            # arrival process, whose default seed is also derived from the
            # scenario seed and tenant index.
            rng = np.random.default_rng([seed, tenant_index, 0x5EED])
            indices = sorted(rng.choice(len(requests), size=keep, replace=False))
            requests = [requests[i] for i in indices]
        offset = (tenant_index + 1) * CONTENT_ID_STRIDE
        namespaced = [_namespace(request, tenant, offset) for request in requests]
        assigned = tenant.arrival.assign(namespaced)
        merged.extend(
            (request.arrival_time, tenant_index, request.request_id, request)
            for request in assigned
        )

    merged.sort(key=lambda entry: entry[:3])
    requests = [entry[3] for entry in merged]
    tenant_of: dict[int, str] = {}
    for new_id, request in enumerate(requests):
        request.request_id = new_id
        tenant_of[new_id] = request.metadata["tenant"]
    return MixedTrace(
        name=name,
        requests=requests,
        tenants=tuple(tenants),
        tenant_of=tenant_of,
    )
