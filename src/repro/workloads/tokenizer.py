"""Deterministic synthetic tokenizer.

The examples build prompts out of text (user profiles, posts, credit
histories).  A real LLM tokenizer is not available offline, so this module
provides a deterministic stand-in: whitespace/punctuation word splitting with a
fixed sub-word expansion factor and stable hashing of words to token ids.  The
serving engines never look at token *values* — only counts and prefix equality
matter — so this is sufficient for realistic end-to-end examples.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_WORD_PATTERN = re.compile(r"\w+|[^\w\s]")


@dataclass(frozen=True)
class SyntheticTokenizer:
    """Deterministic text-to-token-id mapping.

    Attributes:
        vocab_size: Token id space (ids are hashes of sub-words modulo this).
        subwords_per_word: Average number of tokens a word expands into; the
            default of 1.3 approximates common BPE vocabularies on English text.
    """

    vocab_size: int = 128_000
    subwords_per_word: float = 1.3

    def encode(self, text: str) -> list[int]:
        """Tokenize ``text`` into a deterministic list of token ids."""
        tokens: list[int] = []
        for index, word in enumerate(_WORD_PATTERN.findall(text)):
            pieces = self._split_word(word, index)
            for piece_index, piece in enumerate(pieces):
                tokens.append(self._token_id(piece, piece_index))
        return tokens

    def count_tokens(self, text: str) -> int:
        """Token count of ``text`` (cheaper than :meth:`encode` for sizing)."""
        words = _WORD_PATTERN.findall(text)
        total = 0
        for index, word in enumerate(words):
            total += len(self._split_word(word, index))
        return total

    def _split_word(self, word: str, index: int) -> list[str]:
        # Expand roughly every third word into two sub-words so that the
        # average expansion matches ``subwords_per_word`` without randomness.
        extra_every = max(int(round(1.0 / max(self.subwords_per_word - 1.0, 1e-9))), 1)
        if len(word) > 3 and index % extra_every == 0:
            midpoint = len(word) // 2
            return [word[:midpoint], word[midpoint:]]
        return [word]

    def _token_id(self, piece: str, salt: int) -> int:
        # Python's built-in hash is salted per process; use a stable FNV-1a so
        # that token ids are reproducible across runs.
        value = 0xCBF29CE484222325
        for byte in f"{salt}:{piece}".encode("utf-8"):
            value ^= byte
            value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return value % self.vocab_size
