"""Workload registry: look up the paper's workloads by name."""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.workloads.credit_verification import CreditVerificationWorkload
from repro.workloads.post_recommendation import PostRecommendationWorkload
from repro.workloads.trace import WorkloadTrace

_WORKLOAD_FACTORIES = {
    "post-recommendation": PostRecommendationWorkload,
    "credit-verification": CreditVerificationWorkload,
}


def list_workloads() -> list[str]:
    """Names of the registered workloads (the paper's two datasets)."""
    return sorted(_WORKLOAD_FACTORIES)


def get_workload(name: str, **overrides) -> WorkloadTrace:
    """Generate a registered workload, optionally overriding its parameters.

    Args:
        name: ``"post-recommendation"`` or ``"credit-verification"``.
        **overrides: Generator parameters (e.g. ``num_users=4`` for fast tests).
    """
    try:
        factory = _WORKLOAD_FACTORIES[name]
    except KeyError:
        known = ", ".join(list_workloads())
        raise WorkloadError(f"unknown workload {name!r}; known workloads: {known}") from None
    return factory(**overrides).generate()
