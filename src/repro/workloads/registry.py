"""Workload registry: look up workload generators by name.

Ships with the paper's two datasets and accepts additional generators through
:func:`register_workload` (the scenario engine uses the same registry, so a
registered generator is immediately usable from scenario config files).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import UnknownWorkloadError
from repro.workloads.credit_verification import CreditVerificationWorkload
from repro.workloads.post_recommendation import PostRecommendationWorkload
from repro.workloads.trace import WorkloadTrace

_WORKLOAD_FACTORIES: dict[str, Callable] = {
    "post-recommendation": PostRecommendationWorkload,
    "credit-verification": CreditVerificationWorkload,
}


def list_workloads() -> list[str]:
    """Names of the registered workloads (the paper's two datasets by default)."""
    return sorted(_WORKLOAD_FACTORIES)


def register_workload(name: str, factory: Callable) -> None:
    """Register ``factory`` under ``name``.

    Args:
        name: Registry key (kebab-case by convention).
        factory: Callable accepting the generator's keyword parameters and
            returning an object with a ``generate() -> WorkloadTrace`` method.
    """
    _WORKLOAD_FACTORIES[name] = factory


def get_workload(name: str, **overrides) -> WorkloadTrace:
    """Generate a registered workload, optionally overriding its parameters.

    Args:
        name: A registered workload name (see :func:`list_workloads`).
        **overrides: Generator parameters (e.g. ``num_users=4`` for fast tests).

    Raises:
        UnknownWorkloadError: if ``name`` is not registered; the exception
            carries the valid names in its ``available`` attribute.
    """
    try:
        factory = _WORKLOAD_FACTORIES[name]
    except KeyError:
        raise UnknownWorkloadError(name, list_workloads()) from None
    return factory(**overrides).generate()
