"""Post recommendation workload (Table 1, first row).

The scenario from §2.3 / §7.1 of the paper: a social-media platform asks the
LLM, for each of 50 candidate posts per user, "would this user be interested in
this post?".  Every request for the same user shares a long prefix (the system
prompt, the user profile, and the browsing history), followed by a short,
request-specific post and question — so the workload exercises the prefix cache
and the scheduler's cache-aware calibration.

Paper parameters reproduced here:

* 20 users;
* user profile + history length drawn from Normal(14,000, 3,000) tokens,
  clipped to the paper's reported 11,000-17,000 range;
* 50 candidate posts per user, 150 tokens each;
* total tokens ≈ 14 million.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workloads.trace import Request, TokenSegment, TokenSequence, WorkloadTrace

#: Content-id namespaces keep segment ids from different roles disjoint.
_SYSTEM_PROMPT_ID = 1
_PROFILE_BASE = 10_000
_POST_BASE = 1_000_000
_QUESTION_BASE = 5_000_000


@dataclass(frozen=True)
class PostRecommendationWorkload:
    """Generator for the post recommendation trace.

    Attributes mirror the paper's dataset parameters; shrink ``num_users`` or
    ``posts_per_user`` for fast tests.
    """

    num_users: int = 20
    posts_per_user: int = 50
    post_tokens: int = 150
    profile_mean_tokens: int = 14_000
    profile_std_tokens: int = 3_000
    profile_min_tokens: int = 11_000
    profile_max_tokens: int = 17_000
    system_prompt_tokens: int = 128
    question_tokens: int = 16
    seed: int = 0

    name = "post-recommendation"

    def __post_init__(self) -> None:
        if self.num_users <= 0 or self.posts_per_user <= 0:
            raise WorkloadError("post recommendation needs at least one user and one post")
        if self.profile_min_tokens > self.profile_max_tokens:
            raise WorkloadError("profile_min_tokens must not exceed profile_max_tokens")

    def profile_length(self, rng: np.random.Generator) -> int:
        """Draw one user-profile length from the paper's distribution."""
        length = rng.normal(self.profile_mean_tokens, self.profile_std_tokens)
        return int(np.clip(length, self.profile_min_tokens, self.profile_max_tokens))

    def generate(self) -> WorkloadTrace:
        """Generate the full trace (requests are grouped by user, unordered in time)."""
        rng = np.random.default_rng(self.seed)
        requests: list[Request] = []
        request_id = 0
        for user_index in range(self.num_users):
            user_id = f"user-{user_index:04d}"
            profile_tokens = self.profile_length(rng)
            shared_prefix = (
                TokenSegment(_SYSTEM_PROMPT_ID, self.system_prompt_tokens),
                TokenSegment(_PROFILE_BASE + user_index, profile_tokens),
            )
            for post_index in range(self.posts_per_user):
                post_content_id = _POST_BASE + user_index * self.posts_per_user + post_index
                sequence = TokenSequence([
                    *shared_prefix,
                    TokenSegment(post_content_id, self.post_tokens),
                    TokenSegment(_QUESTION_BASE + request_id, self.question_tokens),
                ])
                requests.append(Request(
                    request_id=request_id,
                    user_id=user_id,
                    sequence=sequence,
                    allowed_outputs=("Yes", "No"),
                    metadata={
                        "post_index": post_index,
                        "profile_tokens": profile_tokens,
                        "shared_prefix_tokens": self.system_prompt_tokens + profile_tokens,
                    },
                ))
                request_id += 1
        description = {
            "why": "evaluate PrefillOnly under frequent prefix cache reuse",
            "posts_per_user": self.posts_per_user,
            "post_tokens": self.post_tokens,
            "profile_token_range": (self.profile_min_tokens, self.profile_max_tokens),
        }
        return WorkloadTrace(name=self.name, requests=requests, description=description)
