"""The Figure 5 scheduling example, as an executable scenario.

§6.2/§6.3 of the paper walk through four requests A, B, C, D that arrive
together with lengths A < C < B < D, where A and D share a prefix, B and C
share a prefix, and the prefix cache can only hold roughly one request's state.
FIFO and plain SRJF each achieve one prefix-cache hit; SRJF with continuous JCT
calibration achieves two, because after A finishes it notices that D's JCT just
dropped and schedules D before C evicts A's cache.

:func:`run_scheduling_example` replays that scenario against a real scheduler
and a real KV-cache manager and reports the schedule and the hit count, so the
example is a measurable property of the implementation rather than prose.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.request_state import EngineRequest
from repro.core.scheduler import Scheduler, make_scheduler
from repro.kvcache.manager import CommitPolicy, KVCacheManager
from repro.workloads.trace import Request, TokenSegment, TokenSequence

#: Block size used by the example (small so the scenario stays readable).
EXAMPLE_BLOCK_SIZE = 16

#: Content ids of the two shared prefixes.
_PREFIX_AD = 1
_PREFIX_BC = 2
_UNIQUE_BASE = 100


@dataclass(frozen=True)
class SchedulingExampleResult:
    """Outcome of one policy on the Figure 5 scenario."""

    policy: str
    schedule: tuple[str, ...]
    cache_hits: int
    hit_requests: tuple[str, ...]


def build_example_requests(*, block_size: int = EXAMPLE_BLOCK_SIZE) -> dict[str, Request]:
    """Build the four requests of the example.

    Lengths (in blocks): A=4, C=6, B=8, D=9, so A < C < B < D as in the paper.
    A and D share their first four blocks; B and C share their first four blocks.
    """
    def request(name: str, request_id: int, prefix_id: int, unique_blocks: int) -> Request:
        segments = [
            TokenSegment(prefix_id, 4 * block_size),
            TokenSegment(_UNIQUE_BASE + request_id, unique_blocks * block_size),
        ] if unique_blocks else [TokenSegment(prefix_id, 4 * block_size)]
        return Request(request_id=request_id, user_id=name,
                       sequence=TokenSequence(segments))

    return {
        "A": request("A", 0, _PREFIX_AD, 0),
        "B": request("B", 1, _PREFIX_BC, 4),
        "C": request("C", 2, _PREFIX_BC, 2),
        "D": request("D", 3, _PREFIX_AD, 5),
    }


def run_scheduling_example(policy: str, *, cache_blocks: int = 8,
                           block_size: int = EXAMPLE_BLOCK_SIZE) -> SchedulingExampleResult:
    """Replay the Figure 5 scenario under one scheduling policy.

    Args:
        policy: ``"fcfs"``, ``"srjf"``, or ``"srjf-calibrated"``.
        cache_blocks: Prefix-cache capacity in blocks (the paper's "can only
            hold the state of about one request").
        block_size: Tokens per block.
    """
    requests = build_example_requests(block_size=block_size)
    kv = KVCacheManager(cache_blocks * block_size, block_size=block_size)
    scheduler: Scheduler = make_scheduler(policy, fairness_lambda=0.0)

    # All four requests arrive together; FIFO ties are broken by arrival order
    # A, B, C, D (the paper's presentation order).
    queue: list[EngineRequest] = []
    for arrival_index, name in enumerate(["A", "B", "C", "D"]):
        request = requests[name]
        engine_request = EngineRequest(
            request=request,
            block_hashes=request.sequence.block_hashes(block_size),
            enqueue_time=arrival_index * 1e-6,
        )
        scheduler.on_submit(engine_request, kv, now=0.0)
        queue.append(engine_request)

    schedule: list[str] = []
    hits: list[str] = []
    now = 0.0
    while queue:
        decision = scheduler.select(queue, kv, now=now)
        engine_request = decision.request
        queue.remove(engine_request)
        lease = kv.begin_execution(
            engine_request.block_hashes, engine_request.num_tokens,
            reserve_full_kv=False, now=now,
        )
        name = engine_request.request.user_id
        schedule.append(name)
        if lease.cached_tokens > 0:
            hits.append(name)
        kv.finish_execution(lease, policy=CommitPolicy.FULL, now=now)
        now += 1.0

    return SchedulingExampleResult(
        policy=policy,
        schedule=tuple(schedule),
        cache_hits=len(hits),
        hit_requests=tuple(hits),
    )


def figure5_comparison(*, cache_blocks: int = 8) -> list[SchedulingExampleResult]:
    """Run all three policies of Figure 5 and return their results."""
    return [
        run_scheduling_example(policy, cache_blocks=cache_blocks)
        for policy in ("fcfs", "srjf", "srjf-calibrated")
    ]
