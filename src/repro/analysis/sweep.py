"""QPS sweep harness — the machinery behind Figures 6, 7, 8, and 9.

One sweep evaluates one engine spec on one hardware setup and one workload
trace over a list of offered arrival rates (queries per second), reporting for
each rate the mean latency, the P99 latency, and the achieved throughput
(goodput).  The paper anchors the rate grid at the base throughput an engine
achieves when the whole trace arrives at once (§7.2), which
:func:`base_throughput` reproduces; :func:`paper_qps_points` then builds the
``{¼x, ½x, x, 2x, 3x, 4x}`` grid.

Every sweep point is an independent simulation (its seed and offered rate are
explicit), so :func:`qps_sweep`, :func:`compare_engines`, and
:func:`throughput_comparison` accept a
:class:`~repro.perf.runner.ParallelRunner` (or the ``max_workers``
convenience) to fan the points across CPU cores; results are byte-identical
to the default serial run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import EngineSpec
from repro.errors import CapacityError, ConfigurationError
from repro.hardware.cluster import HardwareSetup
from repro.model.config import get_model
from repro.perf.runner import ParallelRunner, resolve_runner
from repro.simulation.arrival import BurstArrivalProcess, PoissonArrivalProcess
from repro.simulation.server import ServingSystem
from repro.simulation.simulator import SimulationResult, simulate
from repro.workloads.trace import WorkloadTrace

#: The multipliers of the base throughput the paper sweeps.
PAPER_QPS_MULTIPLIERS = (0.25, 0.5, 1.0, 2.0, 3.0, 4.0)


@dataclass(frozen=True)
class SweepPoint:
    """One (offered QPS, measured latency/throughput) point of a sweep."""

    engine: str
    hardware: str
    workload: str
    qps: float
    mean_latency: float
    p99_latency: float
    throughput_rps: float
    cache_hit_rate: float
    num_finished: int
    num_rejected: int

    def as_dict(self) -> dict:
        return {
            "engine": self.engine,
            "hardware": self.hardware,
            "workload": self.workload,
            "qps": round(self.qps, 4),
            "mean_latency_s": round(self.mean_latency, 3),
            "p99_latency_s": round(self.p99_latency, 3),
            "throughput_rps": round(self.throughput_rps, 4),
            "cache_hit_rate": round(self.cache_hit_rate, 3),
            "num_finished": self.num_finished,
            "num_rejected": self.num_rejected,
        }


def _build_system(spec: EngineSpec, setup: HardwareSetup, trace: WorkloadTrace) -> ServingSystem:
    """Build a serving system provisioned for the trace's longest request.

    Raises:
        CapacityError: if the engine cannot serve the workload's longest request
            on this hardware at all (the ✗ cells of Table 2).
    """
    return ServingSystem.for_setup(
        spec, setup, max_input_length=trace.max_request_tokens
    )


def run_once(spec: EngineSpec, setup: HardwareSetup, trace: WorkloadTrace, *,
             qps: float | None, seed: int = 0) -> SimulationResult:
    """Run one simulation: Poisson arrivals at ``qps``, or a burst when ``None``."""
    system = _build_system(spec, setup, trace)
    if qps is None:
        arrivals = BurstArrivalProcess(seed=seed)
    else:
        arrivals = PoissonArrivalProcess(rate=qps, seed=seed)
    requests = arrivals.assign(list(trace.requests))
    return simulate(system, requests)


def base_throughput(spec: EngineSpec, setup: HardwareSetup, trace: WorkloadTrace, *,
                    seed: int = 0) -> float:
    """Throughput (req/s) when the whole trace arrives at once (the paper's ``x``)."""
    result = run_once(spec, setup, trace, qps=None, seed=seed)
    return result.summary.throughput_rps


def paper_qps_points(base_qps: float,
                     multipliers: tuple[float, ...] = PAPER_QPS_MULTIPLIERS) -> list[float]:
    """The offered-QPS grid the paper evaluates, anchored at ``base_qps``."""
    if base_qps <= 0:
        raise ConfigurationError("base_qps must be positive")
    return [base_qps * multiplier for multiplier in multipliers]


def _sweep_point_task(task: tuple) -> SweepPoint:
    """Run one (engine, setup, trace, qps, seed) simulation into a SweepPoint.

    Module-level so the parallel runner can pickle it; a pure function of its
    arguments, so serial and parallel execution produce identical points.
    """
    spec, setup, trace, qps, seed = task
    result = run_once(spec, setup, trace, qps=qps, seed=seed)
    summary = result.summary
    return SweepPoint(
        engine=spec.name,
        hardware=setup.name,
        workload=trace.name,
        qps=qps,
        mean_latency=summary.mean_latency,
        p99_latency=summary.p99_latency,
        throughput_rps=summary.throughput_rps,
        cache_hit_rate=summary.cache_hit_rate,
        num_finished=summary.num_requests,
        num_rejected=summary.num_rejected,
    )


def _base_throughput_task(task: tuple) -> float:
    """Base throughput of one engine, 0.0 when the engine is infeasible."""
    spec, setup, trace, seed = task
    try:
        return base_throughput(spec, setup, trace, seed=seed)
    except CapacityError:
        return 0.0


def qps_sweep(spec: EngineSpec, setup: HardwareSetup, trace: WorkloadTrace,
              qps_values: list[float], *, seed: int = 0,
              runner: ParallelRunner | None = None,
              max_workers: int | None = None) -> list[SweepPoint]:
    """Sweep one engine over the offered-QPS grid.

    Engines that cannot serve the workload at all (profile run fails) return an
    empty list, mirroring the missing curves in the paper's figures.

    Pass ``runner`` (or ``max_workers``) to fan the points across processes;
    the returned points are byte-identical to the serial default.
    """
    try:
        _build_system(spec, setup, trace)
    except CapacityError:
        return []
    active = resolve_runner(runner, max_workers)
    tasks = [(spec, setup, trace, qps, seed) for qps in qps_values]
    return active.map(_sweep_point_task, tasks)


def compare_engines(specs: list[EngineSpec], setup: HardwareSetup, trace: WorkloadTrace,
                    qps_values: list[float], *, seed: int = 0,
                    runner: ParallelRunner | None = None,
                    max_workers: int | None = None) -> dict[str, list[SweepPoint]]:
    """Sweep several engines over the same grid; infeasible engines map to [].

    With a parallel runner the fan-out is per (engine, rate) pair — finer than
    per engine, so a slow engine's points do not serialise behind each other.
    """
    active = resolve_runner(runner, max_workers)
    results: dict[str, list[SweepPoint]] = {spec.name: [] for spec in specs}
    feasible: list[EngineSpec] = []
    for spec in specs:
        try:
            _build_system(spec, setup, trace)
        except CapacityError:
            continue
        feasible.append(spec)
    tasks = [
        (spec, setup, trace, qps, seed)
        for spec in feasible for qps in qps_values
    ]
    for point in active.map(_sweep_point_task, tasks):
        results[point.engine].append(point)
    return results


def throughput_comparison(specs: list[EngineSpec], setup: HardwareSetup, trace: WorkloadTrace, *,
                          seed: int = 0,
                          runner: ParallelRunner | None = None,
                          max_workers: int | None = None) -> dict[str, float]:
    """Base throughput of each engine on one setup/workload (Figure 8 bars).

    Engines that cannot serve the workload report 0.  The engines are
    independent burst simulations, so they fan across the runner's workers.
    """
    active = resolve_runner(runner, max_workers)
    tasks = [(spec, setup, trace, seed) for spec in specs]
    values = active.map(_base_throughput_task, tasks)
    return {spec.name: value for spec, value in zip(specs, values)}


def setup_for_name(name: str) -> HardwareSetup:
    """Convenience re-export so benches only need the sweep module."""
    from repro.hardware.cluster import get_hardware_setup

    return get_hardware_setup(name)


def model_for_setup(setup: HardwareSetup):
    """Resolve the model a hardware setup serves (convenience for benches)."""
    return get_model(setup.model_name)
