"""Plain-text table / series formatting for benchmark output.

The benchmark harness prints the same rows and series the paper's tables and
figures report; these helpers keep that printing readable and consistent
without pulling in a plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _stringify(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:,.1f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(rows: Sequence[dict], *, columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render dict rows as an aligned plain-text table.

    Args:
        rows: One dict per table row; missing keys render as empty cells.
        columns: Column order (defaults to the first row's key order).
        title: Optional heading line printed above the table.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table = [[_stringify(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in table))
        for index, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in table:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def to_markdown_table(rows: Sequence[dict], *, columns: Sequence[str] | None = None) -> str:
    """Render dict rows as a GitHub-flavoured markdown table.

    Args:
        rows: One dict per table row; missing keys render as empty cells.
        columns: Column order (defaults to the first row's key order).
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    lines = ["| " + " | ".join(str(c) for c in columns) + " |",
             "| " + " | ".join("---" for _ in columns) + " |"]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(row.get(c, "")) for c in columns) + " |")
    return "\n".join(lines)


def format_series(points: Iterable[tuple[float, float]], *, x_label: str = "x",
                  y_label: str = "y", title: str | None = None) -> str:
    """Render an (x, y) series as two aligned columns (one figure line).

    Args:
        points: Iterable of (x, y) pairs, already in plot order.
        x_label / y_label: Column headings.
        title: Optional heading line printed above the series.
    """
    rows = [{x_label: x, y_label: y} for x, y in points]
    return format_table(rows, columns=[x_label, y_label], title=title)


def format_fleet_report(result) -> str:
    """Render a fleet simulation result as a multi-table plain-text report.

    Args:
        result: A :class:`~repro.simulation.simulator.FleetSimulationResult`
            (duck-typed: anything exposing ``fleet_name``, ``summary``,
            ``fleet``, and ``cache_stats`` works, which keeps this module free
            of simulation imports).

    Returns:
        Latency summary, fleet summary, per-replica cache table, and — when
        any occurred — the scale-event log, tier report, and resilience
        report, separated by blank lines.
    """
    sections = [
        format_table([result.summary.as_dict()],
                     title=f"Fleet {result.fleet_name!r}: latency / throughput"),
        format_table([result.fleet.as_dict()], title="Fleet summary"),
    ]
    replica_rows = [
        {
            "replica": name,
            "utilization": round(utilization, 3),
            "token_hit_rate": round(result.fleet.token_hit_rate_per_replica.get(name, 0.0), 3),
        }
        for name, utilization in result.fleet.utilization_per_replica.items()
    ]
    if replica_rows:
        sections.append(format_table(replica_rows, title="Per-replica utilisation"))
    if result.fleet.scale_events:
        sections.append(format_table(list(result.fleet.scale_events), title="Scale events"))
    if getattr(result.fleet, "offload", None) is not None:
        sections.append(format_table(
            [result.fleet.offload], title="CPU offload store (fleet aggregate)"
        ))
    if getattr(result.fleet, "tiers", None) is not None:
        sections.append(format_tier_report(result.fleet.tiers))
    if getattr(result.fleet, "resilience", None) is not None:
        sections.append(format_resilience_report(result.fleet.resilience))
    return "\n\n".join(sections)


def format_resilience_report(resilience) -> str:
    """Render a chaos run's fault/recovery accounting as plain-text tables.

    Args:
        resilience: A :class:`~repro.simulation.metrics.ResilienceSummary`
            (duck-typed: anything with its counters, rates, and ``fault_log``
            rows works).

    Returns:
        A goodput/SLO-under-failure summary line, a lost-work line, and the
        per-event fault log (with per-fault detail, so MTTR and evacuation
        sizes are visible per crash).
    """
    sections = [
        format_table([{
            "offered_rps": round(resilience.offered_rps, 3),
            "goodput_rps": round(resilience.goodput_rps, 3),
            "goodput_ratio": round(resilience.goodput_ratio, 3),
            "num_faults": resilience.num_faults,
            "num_crashes": resilience.num_crashes,
            "num_recoveries": resilience.num_recoveries,
            "mean_mttr_s": round(resilience.mean_mttr_s, 3),
        }], title="Resilience: goodput under failure"),
        format_table([{
            "retried": resilience.num_retried,
            "lost_in_flight": resilience.num_lost_in_flight,
            "lost_work_tokens": resilience.lost_work_tokens,
            "lost_kv_tokens": resilience.lost_kv_tokens,
            "unserved": resilience.num_unserved,
            "warm_restored_blocks": resilience.warm_restored_blocks,
            "warm_restore_hit_rate": round(resilience.warm_restore_hit_rate, 3),
        }], title="Resilience: lost work and recovery"),
    ]
    if getattr(resilience, "policy", None) is not None:
        sections.append(format_table(
            [dict(resilience.policy)], title="Resilience: policy outcomes"
        ))
    if resilience.fault_log:
        sections.append(format_table(
            list(resilience.fault_log), title="Fault log"
        ))
    return "\n\n".join(sections)


def format_tier_report(tiers) -> str:
    """Render per-tier hit rates and transfer accounting as plain-text tables.

    Args:
        tiers: A :class:`~repro.simulation.metrics.TierSummary` (duck-typed:
            anything with its token counters, rate properties, block movement
            fields, and optional ``cluster`` dict works).

    Returns:
        A per-tier hit table, a block-movement line, and — when the run had a
        cluster store — the fleet-wide store counters with per-replica hits.
    """
    tier_rows = [
        {"tier": "gpu (L1)", "tokens_served": tiers.tokens_hit_gpu,
         "hit_rate": round(tiers.gpu_hit_rate, 3)},
        {"tier": "host (L2)", "tokens_served": tiers.tokens_hit_host,
         "hit_rate": round(tiers.host_hit_rate, 3)},
        {"tier": "cluster (L3)", "tokens_served": tiers.tokens_hit_cluster,
         "hit_rate": round(tiers.cluster_hit_rate, 3)},
        {"tier": "(recomputed)",
         "tokens_served": tiers.tokens_total - tiers.tokens_hit_gpu
         - tiers.tokens_hit_host - tiers.tokens_hit_cluster,
         "hit_rate": round(1.0 - tiers.tier_hit_rate, 3)},
    ]
    sections = [
        format_table(tier_rows, title="KV tiers: per-tier hits"),
        format_table([{
            "promoted": tiers.promoted_blocks,
            "demoted": tiers.demoted_blocks,
            "prefetched": tiers.prefetched_blocks,
            "dropped": tiers.dropped_blocks,
            "bytes_up": tiers.bytes_up,
            "bytes_down": tiers.bytes_down,
            "load_s": round(tiers.load_seconds, 4),
            "prefetch_s": round(tiers.prefetch_seconds, 4),
            "demote_s": round(tiers.demote_seconds, 4),
        }], title="KV tiers: block movement"),
    ]
    if tiers.cluster is not None:
        cluster = dict(tiers.cluster)
        hits_by_replica = cluster.pop("hits_by_replica", {})
        cluster.pop("publishes_by_replica", {})
        sections.append(format_table([cluster], title="Cluster store (L3, fleet-shared)"))
        if hits_by_replica:
            sections.append(format_table(
                [{"replica": name, "cluster_hits": hits}
                 for name, hits in sorted(hits_by_replica.items())],
                title="Cluster store hits by replica",
            ))
    return "\n\n".join(sections)


def format_scenario_report(scenario_result) -> str:
    """Render a scenario run as the fleet report plus a per-tenant table.

    Args:
        scenario_result: A
            :class:`~repro.simulation.scenario.ScenarioResult` (duck-typed:
            anything exposing ``spec``, ``result``, ``tenants``, and
            ``trace_path`` works).

    Returns:
        The fleet report for the whole run, a per-tenant latency/SLO table,
        and — when the run was recorded — the trace path, separated by blank
        lines.
    """
    sections = [format_fleet_report(scenario_result.result)]
    tenant_rows = [report.as_dict() for report in scenario_result.tenants]
    if tenant_rows:
        sections.append(format_table(
            tenant_rows, title=f"Per-tenant summary ({scenario_result.spec.name})"
        ))
    if scenario_result.trace_path is not None:
        sections.append(f"Trace recorded to {scenario_result.trace_path}")
    return "\n\n".join(sections)
