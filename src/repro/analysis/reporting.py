"""Plain-text table / series formatting for benchmark output.

The benchmark harness prints the same rows and series the paper's tables and
figures report; these helpers keep that printing readable and consistent
without pulling in a plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _stringify(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:,.1f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(rows: Sequence[dict], *, columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render dict rows as an aligned plain-text table.

    Args:
        rows: One dict per table row; missing keys render as empty cells.
        columns: Column order (defaults to the first row's key order).
        title: Optional heading line printed above the table.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table = [[_stringify(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in table))
        for index, column in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in table:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def to_markdown_table(rows: Sequence[dict], *, columns: Sequence[str] | None = None) -> str:
    """Render dict rows as a GitHub-flavoured markdown table.

    Args:
        rows: One dict per table row; missing keys render as empty cells.
        columns: Column order (defaults to the first row's key order).
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    lines = ["| " + " | ".join(str(c) for c in columns) + " |",
             "| " + " | ".join("---" for _ in columns) + " |"]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(row.get(c, "")) for c in columns) + " |")
    return "\n".join(lines)


def format_series(points: Iterable[tuple[float, float]], *, x_label: str = "x",
                  y_label: str = "y", title: str | None = None) -> str:
    """Render an (x, y) series as two aligned columns (one figure line).

    Args:
        points: Iterable of (x, y) pairs, already in plot order.
        x_label / y_label: Column headings.
        title: Optional heading line printed above the series.
    """
    rows = [{x_label: x, y_label: y} for x, y in points]
    return format_table(rows, columns=[x_label, y_label], title=title)


def format_fleet_report(result) -> str:
    """Render a fleet simulation result as a multi-table plain-text report.

    Args:
        result: A :class:`~repro.simulation.simulator.FleetSimulationResult`
            (duck-typed: anything exposing ``fleet_name``, ``summary``,
            ``fleet``, and ``cache_stats`` works, which keeps this module free
            of simulation imports).

    Returns:
        Latency summary, fleet summary, per-replica cache table, and — when
        any occurred — the scale-event log, tier report, and resilience
        report, separated by blank lines.
    """
    sections = [
        format_table([result.summary.as_dict()],
                     title=f"Fleet {result.fleet_name!r}: latency / throughput"),
        format_table([result.fleet.as_dict()], title="Fleet summary"),
    ]
    replica_rows = [
        {
            "replica": name,
            "utilization": round(utilization, 3),
            "token_hit_rate": round(result.fleet.token_hit_rate_per_replica.get(name, 0.0), 3),
        }
        for name, utilization in result.fleet.utilization_per_replica.items()
    ]
    if replica_rows:
        sections.append(format_table(replica_rows, title="Per-replica utilisation"))
    if result.fleet.scale_events:
        sections.append(format_table(list(result.fleet.scale_events), title="Scale events"))
    if getattr(result.fleet, "offload", None) is not None:
        sections.append(format_table(
            [result.fleet.offload], title="CPU offload store (fleet aggregate)"
        ))
    if getattr(result.fleet, "tiers", None) is not None:
        sections.append(format_tier_report(result.fleet.tiers))
    if getattr(result.fleet, "resilience", None) is not None:
        sections.append(format_resilience_report(result.fleet.resilience))
    return "\n\n".join(sections)


def format_resilience_report(resilience) -> str:
    """Render a chaos run's fault/recovery accounting as plain-text tables.

    Args:
        resilience: A :class:`~repro.simulation.metrics.ResilienceSummary`
            (duck-typed: anything with its counters, rates, and ``fault_log``
            rows works).

    Returns:
        A goodput/SLO-under-failure summary line, a lost-work line, and the
        per-event fault log (with per-fault detail, so MTTR and evacuation
        sizes are visible per crash).
    """
    sections = [
        format_table([{
            "offered_rps": round(resilience.offered_rps, 3),
            "goodput_rps": round(resilience.goodput_rps, 3),
            "goodput_ratio": round(resilience.goodput_ratio, 3),
            "num_faults": resilience.num_faults,
            "num_crashes": resilience.num_crashes,
            "num_recoveries": resilience.num_recoveries,
            "mean_mttr_s": round(resilience.mean_mttr_s, 3),
        }], title="Resilience: goodput under failure"),
        format_table([{
            "retried": resilience.num_retried,
            "lost_in_flight": resilience.num_lost_in_flight,
            "lost_work_tokens": resilience.lost_work_tokens,
            "lost_kv_tokens": resilience.lost_kv_tokens,
            "unserved": resilience.num_unserved,
            "warm_restored_blocks": resilience.warm_restored_blocks,
            "warm_restore_hit_rate": round(resilience.warm_restore_hit_rate, 3),
        }], title="Resilience: lost work and recovery"),
    ]
    if getattr(resilience, "policy", None) is not None:
        sections.append(format_table(
            [dict(resilience.policy)], title="Resilience: policy outcomes"
        ))
    if resilience.fault_log:
        sections.append(format_table(
            list(resilience.fault_log), title="Fault log"
        ))
    return "\n\n".join(sections)


def format_tier_report(tiers) -> str:
    """Render per-tier hit rates and transfer accounting as plain-text tables.

    Args:
        tiers: A :class:`~repro.simulation.metrics.TierSummary` (duck-typed:
            anything with its token counters, rate properties, block movement
            fields, and optional ``cluster`` dict works).

    Returns:
        A per-tier hit table, a block-movement line, and — when the run had a
        cluster store — the fleet-wide store counters with per-replica hits.
    """
    tier_rows = [
        {"tier": "gpu (L1)", "tokens_served": tiers.tokens_hit_gpu,
         "hit_rate": round(tiers.gpu_hit_rate, 3)},
        {"tier": "host (L2)", "tokens_served": tiers.tokens_hit_host,
         "hit_rate": round(tiers.host_hit_rate, 3)},
        {"tier": "cluster (L3)", "tokens_served": tiers.tokens_hit_cluster,
         "hit_rate": round(tiers.cluster_hit_rate, 3)},
        {"tier": "(recomputed)",
         "tokens_served": tiers.tokens_total - tiers.tokens_hit_gpu
         - tiers.tokens_hit_host - tiers.tokens_hit_cluster,
         "hit_rate": round(1.0 - tiers.tier_hit_rate, 3)},
    ]
    sections = [
        format_table(tier_rows, title="KV tiers: per-tier hits"),
        format_table([{
            "promoted": tiers.promoted_blocks,
            "demoted": tiers.demoted_blocks,
            "prefetched": tiers.prefetched_blocks,
            "dropped": tiers.dropped_blocks,
            "bytes_up": tiers.bytes_up,
            "bytes_down": tiers.bytes_down,
            "load_s": round(tiers.load_seconds, 4),
            "prefetch_s": round(tiers.prefetch_seconds, 4),
            "demote_s": round(tiers.demote_seconds, 4),
        }], title="KV tiers: block movement"),
    ]
    if tiers.cluster is not None:
        cluster = dict(tiers.cluster)
        hits_by_replica = cluster.pop("hits_by_replica", {})
        cluster.pop("publishes_by_replica", {})
        sections.append(format_table([cluster], title="Cluster store (L3, fleet-shared)"))
        if hits_by_replica:
            sections.append(format_table(
                [{"replica": name, "cluster_hits": hits}
                 for name, hits in sorted(hits_by_replica.items())],
                title="Cluster store hits by replica",
            ))
    return "\n\n".join(sections)


def format_scenario_report(scenario_result) -> str:
    """Render a scenario run as the fleet report plus a per-tenant table.

    Args:
        scenario_result: A
            :class:`~repro.simulation.scenario.ScenarioResult` (duck-typed:
            anything exposing ``spec``, ``result``, ``tenants``, and
            ``trace_path`` works).

    Returns:
        The fleet report for the whole run, a per-tenant latency/SLO table,
        and — when the run was recorded — the trace path, separated by blank
        lines.
    """
    sections = [format_fleet_report(scenario_result.result)]
    tenant_rows = [report.as_dict() for report in scenario_result.tenants]
    if tenant_rows:
        sections.append(format_table(
            tenant_rows, title=f"Per-tenant summary ({scenario_result.spec.name})"
        ))
    if scenario_result.trace_path is not None:
        sections.append(f"Trace recorded to {scenario_result.trace_path}")
    return "\n\n".join(sections)


def format_critical_path_report(report, *, top: int = 5) -> str:
    """Render a critical-path decomposition as plain-text tables.

    Args:
        report: A :class:`~repro.obs.analysis.CriticalPathReport` (duck-typed:
            anything with its aggregation methods and counters works).
        top: Exemplar count — the slowest finished requests, each with its
            phase breakdown.

    Returns:
        A fleet headline, the fleet-wide phase table, per-tenant and
        per-replica phase tables, and the top-``top`` exemplar table,
        separated by blank lines.
    """
    sections = [
        format_table([{
            "finished": len(report.requests),
            "shed": report.num_shed,
            "deadline_missed": report.num_deadline_missed,
            "mean_e2e_s": round(report.mean_e2e_s(), 4),
            "p99_e2e_s": round(report.p99_e2e_s(), 4),
            "throughput_rps": round(report.throughput_rps(), 4),
        }], title="Critical path: fleet headline"),
    ]
    means = report.phase_means()
    totals = report.phase_totals()
    mean_e2e = report.mean_e2e_s()
    sections.append(format_table(
        [
            {
                "phase": phase,
                "mean_s": round(means[phase], 4),
                "total_s": round(totals[phase], 4),
                "share": round(means[phase] / mean_e2e, 3) if mean_e2e else 0.0,
            }
            for phase in means
        ],
        title="Phase decomposition (mean per finished request)",
    ))
    for title, groups in [("Per-tenant phases (mean seconds)", report.by_tenant()),
                          ("Per-replica phases (mean seconds)", report.by_replica())]:
        rows = [
            {"group": name, "finished": count,
             **{phase: round(value, 4) for phase, value in phases.items()}}
            for name, (count, phases) in groups.items()
        ]
        if rows:
            sections.append(format_table(rows, title=title))
    from repro.obs.analysis import top_exemplars

    exemplar_rows = [
        {
            "request": exemplar.request_id,
            "tenant": exemplar.tenant or "-",
            "replica": exemplar.replica,
            "e2e_s": round(exemplar.e2e_s, 4),
            "retries": exemplar.num_retries,
            "hedges": exemplar.num_hedges,
            **{phase: round(value, 4)
               for phase, value in exemplar.phases.items()},
        }
        for exemplar in top_exemplars(report, top)
    ]
    if exemplar_rows:
        sections.append(format_table(
            exemplar_rows, title=f"Top {len(exemplar_rows)} slowest exemplars"
        ))
    return "\n\n".join(sections)


def format_run_diff_report(diff) -> str:
    """Render a run diff as ranked "what changed" plain-text tables.

    Args:
        diff: A :class:`~repro.obs.analysis.RunDiff` (duck-typed: anything
            with its ``headline`` / ``phases`` / ``replicas`` / ``kinds`` row
            tuples and ``is_zero`` flag works).

    Returns:
        Headline metric deltas, then phase / replica / span-kind attribution
        tables ranked largest mover first — or a single "no differences"
        line when the recordings are identical.
    """
    if diff.is_zero:
        return "runs are identical: zero delta in every tracked quantity"
    sections = [
        format_table(
            [
                {key: (round(value, 4) if isinstance(value, float) else value)
                 for key, value in row.items()}
                for row in diff.headline
            ],
            title="Run diff: headline (candidate - baseline)",
        ),
        format_table(
            [
                {key: (round(value, 4) if isinstance(value, float) else value)
                 for key, value in row.items()}
                for row in diff.phases
            ],
            title="Phase attribution (ranked by |delta|)",
        ),
    ]
    if diff.replicas:
        sections.append(format_table(
            [
                {key: (round(value, 4) if isinstance(value, float) else value)
                 for key, value in row.items()}
                for row in diff.replicas
            ],
            title="Replica attribution (ranked by |service delta|)",
        ))
    changed_kinds = [row for row in diff.kinds if row["delta"] != 0]
    if changed_kinds:
        sections.append(format_table(
            changed_kinds, title="Span-kind count deltas"
        ))
    return "\n\n".join(sections)


def format_alerts_report(report) -> str:
    """Render a burn-rate alert evaluation as plain-text tables.

    Args:
        report: An :class:`~repro.obs.analysis.AlertReport` (duck-typed:
            anything with its ``rules`` / ``events`` / ``budgets`` tuples and
            ``firing_at_end()`` works).

    Returns:
        The evaluated rules, the firing/resolved transition log, end-of-run
        error-budget rows, and a closing line naming any alert still firing.
    """
    sections = [
        format_table(
            [
                {
                    "rule": rule.name,
                    "tenant": rule.tenant or "(all)",
                    "objective": rule.objective,
                    "long_window_s": rule.long_window_s,
                    "short_window_s": rule.short_window_s,
                    "burn_rate": rule.burn_rate,
                    "severity": rule.severity,
                }
                for rule in report.rules
            ],
            title=f"Burn-rate rules (evaluated every {report.interval_s:g}s "
                  f"of simulated time)",
        ),
    ]
    if report.events:
        sections.append(format_table(
            [
                {
                    "time_s": event.time,
                    "rule": event.rule,
                    "tenant": event.tenant,
                    "state": event.state,
                    "severity": event.severity,
                    "burn_long": round(event.burn_long, 2),
                    "burn_short": round(event.burn_short, 2),
                }
                for event in report.events
            ],
            title="Alert transitions",
        ))
    else:
        sections.append("no alert transitions: every window stayed under "
                        "its burn-rate threshold")
    if report.budgets:
        sections.append(format_table(
            [
                {**row, "error_ratio": round(row["error_ratio"], 4),
                 "budget_consumed": round(row["budget_consumed"], 2)}
                for row in report.budgets
            ],
            title="End-of-run error budgets",
        ))
    firing = report.firing_at_end()
    if firing:
        names = ", ".join(f"{rule}[{tenant}]" for rule, tenant in firing)
        sections.append(f"STILL FIRING at end of run: {names}")
    else:
        sections.append("all alerts resolved by end of run")
    return "\n\n".join(sections)
