"""Maximum-input-length ablation — Figure 10 of the paper.

Figure 10 decomposes PrefillOnly's MIL improvement into three incremental
steps on top of the vanilla and chunked-prefill baselines:

1. **Chunking** the position-wise layers (hybrid prefilling), but naively
   concatenating the chunk outputs at the end, which transiently keeps both the
   per-chunk outputs and the concatenated copy alive;
2. **+ output preallocation**, which writes each chunk's output directly into a
   pre-allocated tensor and removes the concatenation copy;
3. **+ in-place computation**, which reuses the input tensor as the output when
   the shapes agree and removes one more whole-sequence buffer.

The per-token resident footprints of the three stages are derived from the same
activation profile the memory model uses, so the ablation is consistent with
Table 2's end-to-end MIL numbers (the final stage equals PrefillOnly's MIL).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import EngineSpec
from repro.core.profile_run import DEFAULT_GPU_MEMORY_UTILIZATION
from repro.analysis.mil import max_input_length
from repro.hardware.gpu import GPUSpec
from repro.model.config import ModelConfig
from repro.model.memory import MemoryModel, PrefillMode
from repro.perf.runner import ParallelRunner, resolve_runner


@dataclass(frozen=True)
class MILAblationStep:
    """One bar of the Figure 10 ablation."""

    name: str
    max_input_length: int
    improvement_over_vanilla: float
    hurts_throughput: bool


def _search_limit(fits) -> int:
    """Doubling + binary search over a feasibility predicate."""
    if not fits(1):
        return 0
    low, high = 1, 2
    ceiling = 4_000_000
    while high <= ceiling and fits(high):
        low = high
        high *= 2
    if high > ceiling:
        return ceiling
    while high - low > 1:
        middle = (low + high) // 2
        if fits(middle):
            low = middle
        else:
            high = middle
    return low


def _hybrid_variant_mil(model: ModelConfig, gpu: GPUSpec, *, chunk_tokens: int,
                        extra_residual_copies: int,
                        workspace_fraction: float = 0.04) -> int:
    """MIL of a hybrid-prefilling variant with extra whole-sequence buffers.

    ``extra_residual_copies`` is the number of additional residual-stream-sized
    whole-sequence tensors the variant keeps alive: 1 for naive chunk-output
    concatenation, 0 for preallocated output; the fully optimised in-place
    variant is the memory model's default and removes one of the two copies the
    default plan already counts (expressed as ``-1``).
    """
    memory = MemoryModel(model, workspace_fraction=workspace_fraction)
    profile = memory.activation_profile()
    fixed = memory.weight_bytes() + memory.workspace_bytes()
    chunk_bytes = chunk_tokens * profile.mlp_peak_bytes
    usable = gpu.memory_bytes * DEFAULT_GPU_MEMORY_UTILIZATION

    def fits(num_tokens: int) -> bool:
        resident_per_token = (
            (2 + extra_residual_copies) * profile.residual_bytes
            + profile.qkv_bytes
            + profile.attention_output_bytes
        )
        one_layer_kv = memory.kv_cache_bytes_one_layer(num_tokens)
        total = fixed + num_tokens * resident_per_token + chunk_bytes + one_layer_kv
        return total <= usable

    return _search_limit(fits)


def _ablation_variant_task(task: tuple) -> int:
    """Compute one ablation bar's MIL (module-level for the parallel runner)."""
    kind, model, gpu, payload, chunk_tokens = task
    if kind == "engine":
        return max_input_length(payload, model, gpu)
    return _hybrid_variant_mil(
        model, gpu, chunk_tokens=chunk_tokens, extra_residual_copies=payload
    )


def mil_ablation(model: ModelConfig, gpu: GPUSpec, *,
                 vanilla_spec: EngineSpec, chunked_spec: EngineSpec,
                 chunk_tokens: int = 2048,
                 runner: ParallelRunner | None = None,
                 max_workers: int | None = None) -> list[MILAblationStep]:
    """Compute the Figure 10 bars for one model / GPU pair.

    The five bars are independent binary searches, so they fan across the
    parallel runner's workers when one is given; results are byte-identical
    to the serial default.

    Args:
        model: Model to evaluate (the paper uses Qwen-2.5-32B FP8).
        gpu: GPU to evaluate (the paper uses one A100).
        vanilla_spec: The vanilla vLLM (PagedAttention) spec.
        chunked_spec: The chunked prefill spec.
        chunk_tokens: Hybrid prefilling chunk size for the three hybrid stages.
        runner / max_workers: Optional parallel fan-out.
    """
    active = resolve_runner(runner, max_workers)
    tasks = [
        ("engine", model, gpu, vanilla_spec, chunk_tokens),
        ("engine", model, gpu, chunked_spec, chunk_tokens),
        ("hybrid", model, gpu, 1, chunk_tokens),
        ("hybrid", model, gpu, 0, chunk_tokens),
        ("hybrid", model, gpu, -1, chunk_tokens),
    ]
    vanilla, chunked, chunking_only, with_prealloc, with_inplace = active.map(
        _ablation_variant_task, tasks
    )

    def improvement(value: int) -> float:
        return value / vanilla if vanilla else float("inf")

    return [
        MILAblationStep("vanilla-vllm", vanilla, 1.0, hurts_throughput=False),
        MILAblationStep("chunked-prefill", chunked, improvement(chunked), hurts_throughput=True),
        MILAblationStep("hybrid-chunking", chunking_only, improvement(chunking_only),
                        hurts_throughput=False),
        MILAblationStep("hybrid+preallocation", with_prealloc, improvement(with_prealloc),
                        hurts_throughput=False),
        MILAblationStep("hybrid+in-place", with_inplace, improvement(with_inplace),
                        hurts_throughput=False),
    ]
