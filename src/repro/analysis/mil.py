"""Maximum input length (MIL) analysis — Table 2 of the paper.

For every engine configuration and GPU, the MIL is the largest request (in
tokens) the engine can serve at all.  The engine's profile run
(:func:`repro.core.profile_run.run_profile`) already decides feasibility for a
given length, so the MIL is found by doubling until infeasible and then binary
searching the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import EngineSpec
from repro.core.profile_run import run_profile
from repro.errors import CapacityError
from repro.hardware.cluster import HardwareSetup
from repro.hardware.gpu import GPUSpec
from repro.model.config import ModelConfig

#: Search ceiling: no evaluated configuration exceeds a few hundred thousand
#: tokens, so four million is a safe upper bound for the doubling search.
_SEARCH_CEILING = 4_000_000


def _fits(spec: EngineSpec, model: ModelConfig, gpu: GPUSpec, num_tokens: int) -> bool:
    try:
        run_profile(
            model, gpu,
            max_input_length=num_tokens,
            mode=spec.prefill_mode,
            chunk_tokens=spec.chunk_tokens,
            retain_kv_layers=spec.retain_kv_layers,
            tensor_parallel=spec.tensor_parallel,
            pipeline_parallel=spec.pipeline_parallel,
        )
        return True
    except CapacityError:
        return False


def max_input_length(spec: EngineSpec, model: ModelConfig, gpu: GPUSpec) -> int:
    """Largest request length (tokens) this engine can serve on this GPU.

    Returns 0 if even a one-token request does not fit (the model's weights
    alone exceed the GPU under the spec's sharding).
    """
    if not _fits(spec, model, gpu, 1):
        return 0
    low = 1
    high = 2
    while high <= _SEARCH_CEILING and _fits(spec, model, gpu, high):
        low = high
        high *= 2
    if high > _SEARCH_CEILING:
        return _SEARCH_CEILING
    # Invariant: low fits, high does not.
    while high - low > 1:
        middle = (low + high) // 2
        if _fits(spec, model, gpu, middle):
            low = middle
        else:
            high = middle
    return low


@dataclass(frozen=True)
class WorkloadFeasibility:
    """Whether an engine's MIL covers a workload's longest request."""

    workload: str
    required_tokens: int
    feasible: bool


def workload_feasibility(mil: int, workload_max_tokens: dict[str, int]) -> list[WorkloadFeasibility]:
    """Check one engine's MIL against each workload's longest request."""
    return [
        WorkloadFeasibility(workload=name, required_tokens=required, feasible=mil >= required)
        for name, required in workload_max_tokens.items()
    ]


def mil_table(specs: list[EngineSpec], setups: list[HardwareSetup],
              model_resolver, *, workload_max_tokens: dict[str, int] | None = None) -> list[dict]:
    """Build the Table 2 rows: one row per (engine, hardware setup).

    Args:
        specs: Engine specs to evaluate.
        setups: Hardware setups (each carries its model name).
        model_resolver: Callable mapping a model name to a :class:`ModelConfig`
            (normally :func:`repro.model.get_model`; injected to avoid a cycle).
        workload_max_tokens: Optional map of workload name to its longest
            request, for the WL1/WL2 feasibility marks.
    """
    rows: list[dict] = []
    for spec in specs:
        for setup in setups:
            model = model_resolver(setup.model_name)
            mil = max_input_length(spec, model, setup.cluster.gpu)
            row = {
                "engine": spec.name,
                "hardware": setup.name,
                "gpu": setup.cluster.gpu.name,
                "model": model.name,
                "max_input_length": mil,
            }
            if workload_max_tokens:
                for check in workload_feasibility(mil, workload_max_tokens):
                    row[f"feasible[{check.workload}]"] = check.feasible
            rows.append(row)
    return rows
