"""Analysis and benchmark harness utilities.

These modules turn the substrates and engines into the numbers the paper
reports: maximum input length per engine per GPU (Table 2, Figure 10), QPS
versus latency sweeps (Figures 6, 7, 9), throughput comparisons (Figure 8), and
plain-text tables for all of them.
"""

from repro.analysis.mil import max_input_length, mil_table, workload_feasibility
from repro.analysis.ablation import mil_ablation, MILAblationStep
from repro.analysis.sweep import (
    SweepPoint,
    run_once,
    base_throughput,
    qps_sweep,
    compare_engines,
    paper_qps_points,
)
from repro.analysis.reporting import (
    format_alerts_report,
    format_critical_path_report,
    format_fleet_report,
    format_run_diff_report,
    format_series,
    format_table,
    format_tier_report,
    to_markdown_table,
)

__all__ = [
    "max_input_length",
    "mil_table",
    "workload_feasibility",
    "mil_ablation",
    "MILAblationStep",
    "SweepPoint",
    "run_once",
    "base_throughput",
    "qps_sweep",
    "compare_engines",
    "paper_qps_points",
    "format_table",
    "format_series",
    "format_fleet_report",
    "format_tier_report",
    "format_critical_path_report",
    "format_run_diff_report",
    "format_alerts_report",
    "to_markdown_table",
]
