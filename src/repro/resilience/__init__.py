"""Resilience policies: deadlines, retries, hedging, breakers, degradation.

This package owns the client-side *reaction* to failure, complementing
:mod:`repro.faults` (which owns the failures themselves).  A
:class:`ResilienceConfig` compiled from a JSON ``"resilience"`` block turns
into a :class:`PolicyRuntime` the :class:`~repro.cluster.fleet.Fleet` drives:

* **deadlines** — requests past ``arrival + timeout_s`` are cancelled in
  queue or mid-flight and accounted as ``deadline_missed``;
* **retries** — crash-evacuated work re-executes after exponential backoff
  with per-request seeded jitter, bounded by per-request attempt and
  per-tenant budget caps;
* **hedging** — a straggling request is duplicated onto a second replica
  after a percentile-derived delay; the first completion wins and the loser
  is cancelled;
* **circuit breaking** — per-replica error/slowdown windows open a breaker
  that any router is wrapped to avoid (:class:`HealthAwareRouter`), with
  half-open probe traffic deciding when to close it again;
* **degradation** — sustained queue pressure engages brownout tiers that
  first pause prefetch/L3-publish traffic, then shed low-priority tenants.

The standing invariant, pinned by tests: with the block absent or
``enabled: false``, every simulation result is byte-identical to a build
without this package; with a fixed seed, enabled runs are bit-reproducible
across shard counts, shard modes, and worker pools (policies force the
lockstep sharded path).  See ``docs/RESILIENCE.md``.
"""

from repro.resilience.config import (
    BreakerPolicy,
    DeadlinePolicy,
    DegradationPolicy,
    HedgePolicy,
    ResilienceConfig,
    RetryPolicy,
    resilience_from_dict,
    resilience_from_model,
)
from repro.resilience.policy import (
    BreakerBank,
    CircuitBreaker,
    DegradeController,
    HealthAwareRouter,
    PolicyRuntime,
)

__all__ = [
    "BreakerBank",
    "BreakerPolicy",
    "CircuitBreaker",
    "DeadlinePolicy",
    "DegradationPolicy",
    "DegradeController",
    "HealthAwareRouter",
    "HedgePolicy",
    "PolicyRuntime",
    "ResilienceConfig",
    "RetryPolicy",
    "resilience_from_dict",
    "resilience_from_model",
]
