"""Compiled resilience-policy configuration.

The frozen runtime mirror of the spec layer's ``"resilience"`` block
(:class:`repro.spec.models.ResilienceSpec`): the spec models own shape,
types, ranges, and cross-field validation; this module owns only the
*compile* step (model -> plain runtime dataclasses) so the hot policy code
never touches spec machinery.

Config block shape (JSON)::

    "resilience": {
      "enabled": true,
      "seed": 0,                      // base of the retry-jitter streams
      "deadline": {"timeout_s": 30.0},
      "retry":    {"max_attempts": 3, "budget_per_tenant": 20,
                   "backoff_base_s": 0.5, "backoff_multiplier": 2.0,
                   "jitter": 0.5},
      "hedge":    {"percentile": 95, "min_samples": 20, "min_delay_s": 0.05},
      "breaker":  {"window": 20, "failure_ratio": 0.5, "min_samples": 5,
                   "cooldown_s": 30.0, "half_open_probes": 2},
      "degrade":  {"depth_per_replica": 8, "shed_depth_per_replica": 16,
                   "sustain_s": 10.0, "recover_s": 10.0,
                   "low_priority_tenants": ["batch"]}
    }

Every sub-policy is optional and independent; a block with none of them (or
``enabled: false``) compiles to an inactive config the fleet treats exactly
like ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spec.core import from_dict
from repro.spec.models import ResilienceSpec

__all__ = [
    "BreakerPolicy",
    "DeadlinePolicy",
    "DegradationPolicy",
    "HedgePolicy",
    "ResilienceConfig",
    "RetryPolicy",
    "resilience_from_dict",
    "resilience_from_model",
]


@dataclass(frozen=True)
class DeadlinePolicy:
    """Cancel requests older than ``timeout_s`` (measured from arrival)."""

    timeout_s: float


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, seeded exponential backoff for crash-evacuated requests.

    ``max_attempts`` counts *executions* of one request (the first submission
    is attempt 1); ``budget_per_tenant`` caps the retries one tenant may
    consume across the whole run (``None`` = unlimited).  The backoff before
    re-execution of attempt ``n + 1`` is::

        backoff_base_s * backoff_multiplier ** (n - 1) * (1 + jitter * u)

    with ``u`` drawn from ``default_rng([seed, request_id, n])`` — one
    independent stream per (request, attempt), the same derivation discipline
    sharding uses, so the schedule is a pure function of the config.
    """

    max_attempts: int
    budget_per_tenant: int | None
    backoff_base_s: float
    backoff_multiplier: float
    jitter: float


@dataclass(frozen=True)
class HedgePolicy:
    """Duplicate stragglers onto a second replica; first completion wins.

    The hedge delay is ``delay_s`` when fixed, otherwise the ``percentile``
    of the trailing completed latencies once ``min_samples`` completions
    exist (never below ``min_delay_s``); until then no hedges launch.
    """

    delay_s: float | None
    percentile: float
    min_samples: int
    min_delay_s: float


@dataclass(frozen=True)
class BreakerPolicy:
    """Per-replica circuit breaker (closed -> open -> half-open -> closed)."""

    window: int
    failure_ratio: float
    min_samples: int
    cooldown_s: float
    half_open_probes: int
    slow_latency_s: float | None


@dataclass(frozen=True)
class DegradationPolicy:
    """Brownout tiers under sustained queue pressure.

    Pressure is the mean waiting-queue depth per routable replica, sampled
    at every fleet submit.  Tier 1 (``depth_per_replica``) pauses prefetch
    and L3-publish traffic; tier 2 (``shed_depth_per_replica``) additionally
    sheds ``low_priority_tenants`` at admission.  A tier engages only after
    ``sustain_s`` of continuous pressure and releases only after
    ``recover_s`` below the threshold (hysteresis).
    """

    depth_per_replica: float
    shed_depth_per_replica: float | None
    sustain_s: float
    recover_s: float
    low_priority_tenants: tuple[str, ...]


@dataclass(frozen=True)
class ResilienceConfig:
    """One compiled ``"resilience"`` block."""

    enabled: bool = True
    seed: int = 0
    deadline: DeadlinePolicy | None = None
    retry: RetryPolicy | None = None
    hedge: HedgePolicy | None = None
    breaker: BreakerPolicy | None = None
    degrade: DegradationPolicy | None = None

    @property
    def active(self) -> bool:
        """True when the config will actually change fleet behaviour."""
        return self.enabled and any(
            policy is not None
            for policy in (self.deadline, self.retry, self.hedge,
                           self.breaker, self.degrade)
        )


def resilience_from_dict(config: dict, *, path: str = "resilience") -> ResilienceConfig:
    """Parse a ``"resilience"`` JSON block into a :class:`ResilienceConfig`.

    Raises:
        ResilienceSpecError: on any malformed key, type, range, or
            cross-field rule (the message carries the dotted JSON path).
    """
    return resilience_from_model(from_dict(ResilienceSpec, config, path=path))


def resilience_from_model(model: ResilienceSpec) -> ResilienceConfig:
    """Compile a parsed :class:`~repro.spec.models.ResilienceSpec`."""
    deadline = retry = hedge = breaker = degrade = None
    if model.deadline is not None:
        deadline = DeadlinePolicy(timeout_s=model.deadline.timeout_s)
    if model.retry is not None:
        retry = RetryPolicy(
            max_attempts=model.retry.max_attempts,
            budget_per_tenant=model.retry.budget_per_tenant,
            backoff_base_s=model.retry.backoff_base_s,
            backoff_multiplier=model.retry.backoff_multiplier,
            jitter=model.retry.jitter,
        )
    if model.hedge is not None:
        hedge = HedgePolicy(
            delay_s=model.hedge.delay_s,
            percentile=model.hedge.percentile,
            min_samples=model.hedge.min_samples,
            min_delay_s=model.hedge.min_delay_s,
        )
    if model.breaker is not None:
        breaker = BreakerPolicy(
            window=model.breaker.window,
            failure_ratio=model.breaker.failure_ratio,
            min_samples=model.breaker.min_samples,
            cooldown_s=model.breaker.cooldown_s,
            half_open_probes=model.breaker.half_open_probes,
            slow_latency_s=model.breaker.slow_latency_s,
        )
    if model.degrade is not None:
        degrade = DegradationPolicy(
            depth_per_replica=model.degrade.depth_per_replica,
            shed_depth_per_replica=model.degrade.shed_depth_per_replica,
            sustain_s=model.degrade.sustain_s,
            recover_s=model.degrade.recover_s,
            low_priority_tenants=tuple(model.degrade.low_priority_tenants),
        )
    return ResilienceConfig(
        enabled=model.enabled,
        seed=model.seed,
        deadline=deadline,
        retry=retry,
        hedge=hedge,
        breaker=breaker,
        degrade=degrade,
    )
