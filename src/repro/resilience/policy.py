"""Resilience-policy runtime: the mutable state machines the fleet drives.

Everything here is deterministic by construction: breakers and the degrade
controller advance only on the simulated clock the fleet hands them,
retry jitter comes from per-``(seed, request_id, attempt)`` RNG streams, and
the hedge delay is a pure function of the trailing completed-latency window.
No wall clock, no global RNG.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.resilience.config import ResilienceConfig
from repro.simulation.routing import Router
from repro.workloads.trace import Request

__all__ = [
    "BreakerBank",
    "CircuitBreaker",
    "DegradeController",
    "HealthAwareRouter",
    "PolicyRuntime",
    "TrackedRequest",
]

#: Trailing completed-latency samples the hedge-delay percentile is taken
#: over; bounded so per-request delay derivation stays O(window).
HEDGE_SAMPLE_WINDOW = 512

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One replica's health state machine.

    Closed: outcomes accumulate in a trailing window; when at least
    ``min_samples`` outcomes exist and the failure fraction reaches
    ``failure_ratio``, the breaker opens.  Open: the replica receives no
    routed traffic until ``cooldown_s`` of simulated time passes, then it
    half-opens.  Half-open: up to ``half_open_probes`` probe requests may be
    routed; that many consecutive successes close the breaker (window
    cleared), any failure re-opens it.

    The open -> half-open transition is evaluated lazily against the clock
    the owning :class:`BreakerBank` carries, so the breaker needs no timer
    of its own in the event loop.
    """

    def __init__(self, policy, *, on_transition=None) -> None:
        self.policy = policy
        self.state = CLOSED
        self._window: deque[bool] = deque(maxlen=policy.window)
        self._opened_at = 0.0
        self._probes_routed = 0
        self._probe_successes = 0
        self._on_transition = on_transition

    def _transition(self, new_state: str, now: float) -> None:
        old, self.state = self.state, new_state
        if self._on_transition is not None:
            self._on_transition(old, new_state, now)

    def _poll(self, now: float) -> None:
        if self.state == OPEN and now - self._opened_at >= self.policy.cooldown_s:
            self._probes_routed = 0
            self._probe_successes = 0
            self._transition(HALF_OPEN, now)

    def allows(self, now: float) -> bool:
        """Whether the router may send this replica a request at ``now``."""
        self._poll(now)
        if self.state == CLOSED:
            return True
        if self.state == HALF_OPEN:
            return self._probes_routed < self.policy.half_open_probes
        return False

    def on_routed(self, now: float) -> None:
        """Account one routed request (consumes a half-open probe slot)."""
        self._poll(now)
        if self.state == HALF_OPEN:
            self._probes_routed += 1

    def on_success(self, now: float) -> None:
        self._poll(now)
        if self.state == HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.policy.half_open_probes:
                self._window.clear()
                self._transition(CLOSED, now)
            return
        self._window.append(True)

    def on_failure(self, now: float) -> None:
        self._poll(now)
        if self.state == HALF_OPEN:
            self._opened_at = now
            self._transition(OPEN, now)
            return
        if self.state == OPEN:
            return
        self._window.append(False)
        if len(self._window) < self.policy.min_samples:
            return
        failures = sum(1 for ok in self._window if not ok)
        if failures / len(self._window) >= self.policy.failure_ratio:
            self._opened_at = now
            self._transition(OPEN, now)


class BreakerBank:
    """Per-replica-key breakers plus the shared simulated clock.

    The owning fleet bumps :attr:`clock` at every entry point (submit,
    policy timer, fault delivery), which is what lets the wrapped router —
    whose :meth:`~HealthAwareRouter.route` signature carries no time —
    evaluate lazy cooldown transitions at the correct simulated instant.

    Args:
        policy: The :class:`~repro.resilience.config.BreakerPolicy`.
        on_transition: Optional ``(key, old_state, new_state, time)``
            callback for observability / counters.
    """

    def __init__(self, policy, *,
                 on_transition: Callable[[int, str, str, float], None] | None = None,
                 ) -> None:
        self.policy = policy
        self.clock = 0.0
        self._on_transition = on_transition
        self._breakers: dict[int, CircuitBreaker] = {}

    def _get(self, key: int) -> CircuitBreaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            callback = None
            if self._on_transition is not None:
                report = self._on_transition

                def callback(old, new, now, _key=key):
                    report(_key, old, new, now)

            breaker = CircuitBreaker(self.policy, on_transition=callback)
            self._breakers[key] = breaker
        return breaker

    def state(self, key: int) -> str:
        """Current state name of ``key``'s breaker (lazily polled)."""
        breaker = self._get(key)
        breaker._poll(self.clock)
        return breaker.state

    def allows(self, key: int) -> bool:
        return self._get(key).allows(self.clock)

    def on_routed(self, key: int) -> None:
        self._get(key).on_routed(self.clock)

    def on_success(self, key: int, latency: float, now: float) -> None:
        """Feed one completion; slow completions count as failures."""
        slow = self.policy.slow_latency_s
        breaker = self._get(key)
        if slow is not None and latency > slow:
            breaker.on_failure(now)
        else:
            breaker.on_success(now)

    def on_failure(self, key: int, now: float) -> None:
        self._get(key).on_failure(now)

    def discard(self, key: int) -> None:
        """Forget a replica that no longer exists (crash / retirement)."""
        self._breakers.pop(key, None)


class HealthAwareRouter(Router):
    """Wrap any router so it skips replicas whose breaker is open.

    The inner router picks first; when its choice is breaker-blocked the
    request deflects deterministically to ``allowed[request_id % len(allowed)]``
    among the healthy replicas.  With every breaker open the inner choice
    stands — shedding the whole fleet is the admission layer's call, not the
    router's.  Replica *keys* (stable across resizes) come from the engine
    instances the fleet hands :meth:`observe_instances`, so breakers survive
    index reshuffles when replicas crash or retire.
    """

    def __init__(self, inner: Router, bank: BreakerBank) -> None:
        super().__init__(inner.num_instances)
        self.inner = inner
        self.bank = bank
        self._keys: tuple[int, ...] = ()

    # The wrapper is exactly as demanding as what it wraps; these drive the
    # fleet's depth collection and the sharded engine's pre-routing checks.
    @property
    def needs_queue_depths(self) -> bool:  # type: ignore[override]
        return self.inner.needs_queue_depths

    @property
    def consults_instances(self) -> bool:  # type: ignore[override]
        return True

    def resize(self, num_instances: int) -> None:
        super().resize(num_instances)
        self.inner.resize(num_instances)

    def observe_instances(self, instances: Sequence) -> None:
        self._keys = tuple(instance.obs_key for instance in instances)
        self.inner.observe_instances(instances)

    def route(self, request: Request, queue_depths: list[int]) -> int:
        choice = self.inner.route(request, queue_depths)
        keys = self._keys[: self.num_instances]
        if keys:
            allowed = [
                index for index, key in enumerate(keys) if self.bank.allows(key)
            ]
            if allowed and choice not in allowed:
                choice = allowed[request.request_id % len(allowed)]
        if choice < len(keys):
            self.bank.on_routed(keys[choice])
        return choice


class DegradeController:
    """Hysteresis brownout tiers driven by sampled queue pressure.

    :meth:`observe` is called with the current pressure (mean waiting-queue
    depth per routable replica) at every fleet submit; a tier engages after
    ``sustain_s`` of continuous pressure at or above its threshold and
    releases after ``recover_s`` continuously below it.  Transitions are
    reported through ``on_transition(old_tier, new_tier, time)``; time spent
    at tier >= 1 accumulates into :attr:`degraded_seconds`
    (:meth:`finalize` closes the trailing interval).
    """

    def __init__(self, policy, *,
                 on_transition: Callable[[int, int, float], None] | None = None,
                 ) -> None:
        self.policy = policy
        self.tier = 0
        self.degraded_seconds = 0.0
        self._on_transition = on_transition
        self._above_since: list[float | None] = [None, None]
        self._below_since: list[float | None] = [None, None]
        self._degraded_since: float | None = None

    def _thresholds(self) -> list[float | None]:
        return [self.policy.depth_per_replica, self.policy.shed_depth_per_replica]

    def _set_tier(self, tier: int, now: float) -> None:
        if tier == self.tier:
            return
        old, self.tier = self.tier, tier
        if old == 0 and tier >= 1:
            self._degraded_since = now
        elif old >= 1 and tier == 0 and self._degraded_since is not None:
            self.degraded_seconds += now - self._degraded_since
            self._degraded_since = None
        if self._on_transition is not None:
            self._on_transition(old, tier, now)

    def observe(self, pressure: float, now: float) -> None:
        """Fold one pressure sample into the tier state machine."""
        target = self.tier
        for level, threshold in enumerate(self._thresholds(), start=1):
            if threshold is None:
                continue
            index = level - 1
            if pressure >= threshold:
                self._below_since[index] = None
                since = self._above_since[index]
                if since is None:
                    self._above_since[index] = since = now
                if self.tier < level and now - since >= self.policy.sustain_s:
                    target = max(target, level)
            else:
                self._above_since[index] = None
                since = self._below_since[index]
                if since is None:
                    self._below_since[index] = since = now
                if self.tier >= level and now - since >= self.policy.recover_s:
                    target = min(target, level - 1)
        self._set_tier(target, now)

    def finalize(self, now: float) -> None:
        """Close the trailing degraded interval at the end of a run."""
        if self._degraded_since is not None:
            self.degraded_seconds += max(now - self._degraded_since, 0.0)
            self._degraded_since = None


@dataclass
class TrackedRequest:
    """The fleet's per-request policy bookkeeping (one per live request).

    ``primary`` is the (replica key, instance name) currently executing the
    request; ``hedge`` the duplicate copy, when one is in flight.  Attempts
    count executions (first submission = 1).
    """

    request: Request
    primary_key: int
    primary_name: str
    hedge_key: int | None = None
    hedge_name: str | None = None
    attempts: int = 1
    retry_pending: bool = False
    done: bool = False


class PolicyRuntime:
    """All resilience-policy state for one fleet run.

    Owns the sub-policy state machines (breaker bank, degrade controller,
    hedge-delay estimator, retry budgets) but none of the request plumbing —
    the fleet keeps the per-request timers and
    :class:`TrackedRequest` records, because cancellation must touch the
    engines directly.
    """

    def __init__(self, config: ResilienceConfig, *,
                 on_breaker_transition=None, on_degrade_transition=None) -> None:
        self.config = config
        self.deadline = config.deadline
        self.retry = config.retry
        self.hedge = config.hedge
        self.breakers: BreakerBank | None = None
        if config.breaker is not None:
            self.breakers = BreakerBank(
                config.breaker, on_transition=on_breaker_transition
            )
        self.degrade: DegradeController | None = None
        if config.degrade is not None:
            self.degrade = DegradeController(
                config.degrade, on_transition=on_degrade_transition
            )
        self._latency_samples: deque[float] = deque(maxlen=HEDGE_SAMPLE_WINDOW)
        self._tenant_retries: dict[str, int] = {}

    # ---------------------------------------------------------------- hedge

    def record_latency(self, latency: float) -> None:
        if self.hedge is not None:
            self._latency_samples.append(latency)

    def hedge_delay(self) -> float | None:
        """Current hedge delay in seconds, or ``None`` while unavailable."""
        policy = self.hedge
        if policy is None:
            return None
        if policy.delay_s is not None:
            return policy.delay_s
        if len(self._latency_samples) < policy.min_samples:
            return None
        delay = float(np.quantile(
            np.fromiter(self._latency_samples, dtype=float),
            policy.percentile / 100.0,
        ))
        return max(delay, policy.min_delay_s)

    # ---------------------------------------------------------------- retry

    def retry_delay(self, request_id: int, attempt: int) -> float:
        """Backoff before re-execution ``attempt + 1`` of ``request_id``.

        ``attempt`` is the number of executions consumed so far (>= 1).  The
        jitter draw comes from its own ``[seed, request_id, attempt]`` RNG
        stream, so the delay is a pure function of the config and identical
        regardless of schedule interleaving.
        """
        policy = self.retry
        delay = policy.backoff_base_s * policy.backoff_multiplier ** (attempt - 1)
        if policy.jitter > 0:
            rng = np.random.default_rng([self.config.seed, request_id, attempt])
            delay *= 1.0 + policy.jitter * float(rng.random())
        return delay

    def try_consume_retry_budget(self, tenant: str | None) -> bool:
        """Consume one unit of the tenant's retry budget; False = exhausted."""
        budget = self.retry.budget_per_tenant
        if budget is None:
            return True
        used = self._tenant_retries.get(tenant or "", 0)
        if used >= budget:
            return False
        self._tenant_retries[tenant or ""] = used + 1
        return True
